// Serving throughput bench: streams scored per second through the
// ServeEngine as a function of worker count and micro-batch size, against
// the single-thread OnlineTranAD::Observe baseline. The acceptance target
// is >2x the baseline at 4 workers — on a single-core host that speedup
// comes from micro-batching (one [B, K, m] forward amortizes per-op tape
// and dispatch overhead over B windows), with worker parallelism stacking
// on top wherever cores allow.
//
// Environment knobs: TRANAD_SCALE (dataset size), TRANAD_EPOCHS (training),
// TRANAD_SERVE_OBS (observations per configuration, default 2000),
// TRANAD_SERVE_STREAMS (concurrent streams, default 8),
// TRANAD_SERVE_REPS (repetitions per configuration, default 3; each row
// reports the best rep — peak throughput is the stable statistic on a
// shared/noisy host).
//
// Two more sections report (informationally — neither gates the exit
// code, since both depend on host core count):
//   - sharded fleet: the same load through a ShardRouter at 1/2/4/8
//     shards (1 worker each), the scale-out curve of the consistent-hash
//     front end. On a multi-core host 8-shard throughput should approach
//     8x the 1-shard row; on a single core it documents the (small)
//     routing overhead instead.
//   - socket loopback: the 1-shard fleet driven through NetServer +
//     NetClient over 127.0.0.1, measuring what the wire protocol costs
//     relative to in-process submission.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/online_detector.h"
#include "core/tranad_detector.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/serve_engine.h"
#include "serve/shard_router.h"

namespace tranad::bench {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoll(v);
}

struct RunResult {
  double throughput = 0.0;  // observations / second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

/// Sequential baseline: one OnlineTranAD per stream, observations scored
/// one at a time on the caller thread (batch size 1, no pipeline).
RunResult RunSequential(TranADDetector* detector, const Dataset& dataset,
                        int64_t streams, int64_t observations) {
  std::vector<OnlineTranAD> online;
  online.reserve(static_cast<size_t>(streams));
  for (int64_t s = 0; s < streams; ++s) {
    online.emplace_back(detector, PotParamsForDataset(dataset.name));
    online.back().Calibrate(dataset.train);
  }
  const int64_t m = dataset.dims();
  Tensor row({m});
  Stopwatch watch;
  for (int64_t i = 0; i < observations; ++i) {
    const int64_t t = (i / streams) % dataset.test.length();
    for (int64_t d = 0; d < m; ++d) {
      row[d] = dataset.test.values.At({t, d});
    }
    online[static_cast<size_t>(i % streams)].Observe(row);
  }
  RunResult result;
  result.throughput = static_cast<double>(observations) /
                      watch.ElapsedSeconds();
  result.mean_batch = 1.0;
  return result;
}

RunResult RunServe(TranADDetector* detector, const Dataset& dataset,
                   int64_t streams, int64_t observations, int64_t workers,
                   int64_t max_batch) {
  serve::ServeOptions options;
  options.num_workers = workers;
  options.max_batch = max_batch;
  options.max_wait_us = 500;
  options.queue_capacity = 4096;
  options.pot = PotParamsForDataset(dataset.name);
  serve::ServeEngine engine(detector, options);

  std::vector<serve::StreamId> ids;
  for (int64_t s = 0; s < streams; ++s) {
    auto created = engine.CreateStream(dataset.train);
    if (!created.ok()) {
      std::fprintf(stderr, "CreateStream: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    ids.push_back(created.value());
  }

  const int64_t m = dataset.dims();
  Tensor row({m});
  Stopwatch watch;
  for (int64_t i = 0; i < observations; ++i) {
    const int64_t t = (i / streams) % dataset.test.length();
    for (int64_t d = 0; d < m; ++d) {
      row[d] = dataset.test.values.At({t, d});
    }
    Status st = Status::Ok();
    do {
      st = engine.Submit(ids[static_cast<size_t>(i % streams)], row, nullptr);
    } while (st.code() == StatusCode::kResourceExhausted);
  }
  engine.Flush();
  const double elapsed = watch.ElapsedSeconds();

  const serve::ServeStatsSnapshot stats = engine.stats();
  RunResult result;
  result.throughput = static_cast<double>(stats.completed) / elapsed;
  result.p50_ms = stats.p50_latency_ms;
  result.p99_ms = stats.p99_latency_ms;
  result.mean_batch = stats.mean_batch_size;
  return result;
}

/// Sharded fleet: the same closed-loop load through a ShardRouter with
/// `shards` single-worker engines behind the consistent-hash ring.
RunResult RunSharded(TranADDetector* detector, const Dataset& dataset,
                     int64_t streams, int64_t observations, int64_t shards) {
  serve::ShardRouterOptions options;
  options.num_shards = shards;
  options.shard.num_workers = 1;
  options.shard.max_batch = 32;
  options.shard.max_wait_us = 500;
  options.shard.queue_capacity = 4096;
  options.shard.pot = PotParamsForDataset(dataset.name);
  serve::ShardRouter router(detector, options);

  for (int64_t s = 0; s < streams; ++s) {
    const Status created =
        router.CreateStream(static_cast<uint64_t>(s + 1), dataset.train);
    if (!created.ok()) {
      std::fprintf(stderr, "CreateStream: %s\n", created.ToString().c_str());
      std::exit(1);
    }
  }

  const int64_t m = dataset.dims();
  Tensor row({m});
  Stopwatch watch;
  for (int64_t i = 0; i < observations; ++i) {
    const int64_t t = (i / streams) % dataset.test.length();
    for (int64_t d = 0; d < m; ++d) {
      row[d] = dataset.test.values.At({t, d});
    }
    const uint64_t key = static_cast<uint64_t>(i % streams) + 1;
    Status st = Status::Ok();
    do {
      st = router.Submit(key, row, nullptr);
    } while (st.code() == StatusCode::kResourceExhausted);
  }
  router.Flush();
  const double elapsed = watch.ElapsedSeconds();

  const serve::ServeStatsSnapshot stats = router.stats();
  RunResult result;
  result.throughput = static_cast<double>(stats.completed) / elapsed;
  result.p50_ms = stats.p50_latency_ms;
  result.p99_ms = stats.p99_latency_ms;
  result.mean_batch = stats.mean_batch_size;
  return result;
}

/// Socket loopback: a 1-shard fleet behind NetServer, driven by NetClient
/// over 127.0.0.1 with a bounded in-flight window. Measures the wire
/// protocol's cost (framing, CRC, syscalls) on top of the serve pipeline.
RunResult RunSocketLoopback(TranADDetector* detector, const Dataset& dataset,
                            int64_t streams, int64_t observations) {
  serve::ShardRouterOptions options;
  options.num_shards = 1;
  options.shard.num_workers = 1;
  options.shard.max_batch = 32;
  options.shard.max_wait_us = 500;
  options.shard.queue_capacity = 4096;
  options.shard.pot = PotParamsForDataset(dataset.name);
  serve::ShardRouter router(detector, options);
  net::NetServer server(&router);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "NetServer: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  std::atomic<int64_t> received{0};
  net::NetClient client;
  client.set_verdict_handler(
      [&](const net::WireVerdict&) { received.fetch_add(1); });
  if (Status st = client.Connect("127.0.0.1", server.port()); !st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  for (int64_t s = 0; s < streams; ++s) {
    const Status created = client.CreateStream(static_cast<uint64_t>(s + 1),
                                               dataset.train.values);
    if (!created.ok()) {
      std::fprintf(stderr, "CreateStream: %s\n", created.ToString().c_str());
      std::exit(1);
    }
  }

  const int64_t m = dataset.dims();
  Tensor row({m});
  Stopwatch watch;
  for (int64_t i = 0; i < observations; ++i) {
    const int64_t t = (i / streams) % dataset.test.length();
    for (int64_t d = 0; d < m; ++d) {
      row[d] = dataset.test.values.At({t, d});
    }
    while (i - received.load() >= 512) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const uint64_t key = static_cast<uint64_t>(i % streams) + 1;
    if (Status st = client.Submit(key, static_cast<uint64_t>(i), row.data(), m);
        !st.ok()) {
      std::fprintf(stderr, "Submit: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  while (received.load() < observations) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double elapsed = watch.ElapsedSeconds();
  client.Close();
  server.Stop();

  const serve::ServeStatsSnapshot stats = router.stats();
  RunResult result;
  result.throughput = static_cast<double>(observations) / elapsed;
  result.p50_ms = stats.p50_latency_ms;
  result.p99_ms = stats.p99_latency_ms;
  result.mean_batch = stats.mean_batch_size;
  return result;
}

int Main() {
  const int64_t observations = EnvInt("TRANAD_SERVE_OBS", 2000);
  const int64_t streams = EnvInt("TRANAD_SERVE_STREAMS", 8);
  const int64_t reps = std::max<int64_t>(1, EnvInt("TRANAD_SERVE_REPS", 3));
  const Dataset& dataset = BenchDataset("SMAP");

  TranADConfig config;
  config.window = 10;
  config.d_ff = 32;
  TrainOptions train;
  train.max_epochs = DefaultEpochs();
  TranADDetector detector(config, train);
  detector.Fit(dataset.train);

  // Warm-up (page-faults, allocator pools), then best-of-reps both paths.
  RunSequential(&detector, dataset, streams, std::min<int64_t>(observations, 256));
  RunResult base;
  for (int64_t rep = 0; rep < reps; ++rep) {
    const RunResult r =
        RunSequential(&detector, dataset, streams, observations);
    if (r.throughput > base.throughput) base = r;
  }

  struct Config {
    int64_t workers;
    int64_t max_batch;
  };
  const std::vector<Config> grid = {
      {1, 1}, {1, 8}, {1, 32}, {2, 32}, {4, 32}, {4, 64},
  };

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  rows.push_back({"sequential Observe()", "1", "1", Fmt2(base.throughput),
                  "1.00", "-", "-", "1.00"});
  csv.push_back({0, 1, 1, base.throughput, 1.0, 0, 0, 1.0});
  double at4 = 0.0;
  for (const Config& c : grid) {
    RunResult r;
    for (int64_t rep = 0; rep < reps; ++rep) {
      const RunResult attempt = RunServe(&detector, dataset, streams,
                                         observations, c.workers, c.max_batch);
      if (attempt.throughput > r.throughput) r = attempt;
    }
    const double speedup = r.throughput / base.throughput;
    if (c.workers == 4) at4 = std::max(at4, speedup);
    rows.push_back({"serve engine", std::to_string(c.workers),
                    std::to_string(c.max_batch), Fmt2(r.throughput),
                    Fmt2(speedup), Fmt2(r.p50_ms), Fmt2(r.p99_ms),
                    Fmt2(r.mean_batch)});
    csv.push_back({1, static_cast<double>(c.workers),
                   static_cast<double>(c.max_batch), r.throughput, speedup,
                   r.p50_ms, r.p99_ms, r.mean_batch});
  }

  // Shard scale-out curve (the "workers" column holds the shard count;
  // every shard runs 1 worker so the curve isolates the router).
  double shard1 = 0.0;
  double shard8 = 0.0;
  for (const int64_t shards : {1, 2, 4, 8}) {
    RunResult r;
    for (int64_t rep = 0; rep < reps; ++rep) {
      const RunResult attempt =
          RunSharded(&detector, dataset, streams, observations, shards);
      if (attempt.throughput > r.throughput) r = attempt;
    }
    if (shards == 1) shard1 = r.throughput;
    if (shards == 8) shard8 = r.throughput;
    const double speedup = r.throughput / base.throughput;
    rows.push_back({"shard router", std::to_string(shards), "32",
                    Fmt2(r.throughput), Fmt2(speedup), Fmt2(r.p50_ms),
                    Fmt2(r.p99_ms), Fmt2(r.mean_batch)});
    csv.push_back({2, static_cast<double>(shards), 32, r.throughput, speedup,
                   r.p50_ms, r.p99_ms, r.mean_batch});
  }

  // Wire-protocol cost: the 1-shard fleet behind a loopback TCP socket.
  {
    RunResult r;
    for (int64_t rep = 0; rep < reps; ++rep) {
      const RunResult attempt =
          RunSocketLoopback(&detector, dataset, streams, observations);
      if (attempt.throughput > r.throughput) r = attempt;
    }
    const double speedup = r.throughput / base.throughput;
    rows.push_back({"socket loopback", "1", "32", Fmt2(r.throughput),
                    Fmt2(speedup), Fmt2(r.p50_ms), Fmt2(r.p99_ms),
                    Fmt2(r.mean_batch)});
    csv.push_back({3, 1, 32, r.throughput, speedup, r.p50_ms, r.p99_ms,
                   r.mean_batch});
  }

  PrintTable(
      "Serving throughput (" + std::to_string(streams) + " streams, " +
          std::to_string(observations) + " observations, SMAP)",
      {"path", "workers", "max_batch", "obs/s", "speedup", "p50 ms", "p99 ms",
       "mean batch"},
      rows);
  WriteBenchCsv("serve_throughput",
                {"serve", "workers", "max_batch", "obs_per_sec", "speedup",
                 "p50_ms", "p99_ms", "mean_batch"},
                csv);
  std::printf("\nbest speedup at 4 workers: %.2fx (target > 2x)\n", at4);
  // Core-count dependent, so reported rather than gated: on an 8-core host
  // this should approach 8x, on one core it is the router's overhead.
  if (shard1 > 0.0) {
    std::printf("8-shard vs 1-shard fleet scaling: %.2fx\n", shard8 / shard1);
  }
  return at4 > 2.0 ? 0 : 2;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
