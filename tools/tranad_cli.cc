// tranad_cli — command-line front end for the library.
//
//   tranad_cli generate --dataset SMD --scale 0.5 --prefix out/smd
//       Writes <prefix>_train.csv, <prefix>_test.csv, <prefix>_labels.csv.
//
//   tranad_cli train --train train.csv --model model.ckpt
//                    [--window 10] [--epochs 10] [--seed 7]
//                    [--checkpoint_every N] [--train_state path] [--resume 1]
//       Trains TranAD on a CSV series (rows = timestamps, cols = dims).
//       With --checkpoint_every N, the full training state is written
//       atomically to --train_state (default: <model>.train_state) every N
//       epochs; an interrupted run restarted with the same flags resumes
//       from the last checkpoint and finishes bitwise-identically to an
//       uninterrupted one (--resume 0 disables).
//
//   tranad_cli score --model model.ckpt --input series.csv
//                    --output scores.csv
//       Scores a series with a trained model (per-dimension scores). The
//       checkpoint is self-contained (config + weights + normalizer).
//
//   tranad_cli evaluate --dataset SMD [--scale 0.5] [--method TranAD]
//       End-to-end evaluation of any registered method on a synthetic
//       benchmark (P/R/AUC/F1 + diagnosis).
//
//   tranad_cli serve --model model.ckpt [--port 0] [--shards 4]
//                    [--workers 4] [--batch 32] [--max-wait-us 200]
//                    [--queue 1024] [--pot SMAP] [--duration-s 0]
//                    [--degraded-after N] [--down-after N]
//                    [--drain-timeout-ms 5000]
//       Starts a sharded serving fleet behind the TCP wire protocol:
//       --shards independent ServeEngines behind a consistent-hash
//       router, each with --workers scoring threads. --port 0 binds an
//       ephemeral port; the chosen port is printed on the "serving:"
//       line (flushed, so scripts can scrape it). Runs until SIGINT/
//       SIGTERM or for --duration-s seconds when positive; shutdown is
//       a graceful drain (exit 0): stop accepting, announce Drain to
//       every client, finish in-flight batches, flush outboxes for up
//       to --drain-timeout-ms. With --down-after N a shard that fails
//       N consecutive scorings is tripped to DOWN and every stream it
//       owned migrates (with exported window+POT state) to the next
//       live shard on the hash ring; --degraded-after marks it
//       DEGRADED earlier for observability. Drive it with
//       serve_loadgen --connect 127.0.0.1:<port>, which dials with
//       --connect-timeout-ms and can retry idempotently via
//       --retry-ms (the server dedups resends by stream+tag).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "baselines/registry.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"
#include "net/server.h"
#include "serve/shard_router.h"

namespace tranad {
namespace {

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args[key] = argv[i + 1];
  }
  return args;
}

std::string Get(const Args& args, const std::string& key,
                const std::string& def = "") {
  auto it = args.find(key);
  return it == args.end() ? def : it->second;
}

// Exit-code contract (documented in --help): scripts can branch on the
// failure category without parsing stderr.
constexpr int kExitOk = 0;
constexpr int kExitConfig = 2;    // bad usage, flags, inputs, missing files
constexpr int kExitIo = 3;        // filesystem/serialization failures
constexpr int kExitInternal = 4;  // internal/runtime errors

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnimplemented:
      return kExitConfig;
    case StatusCode::kIoError:
      return kExitIo;
    default:  // Internal, ResourceExhausted, DeadlineExceeded, Unavailable
      return kExitInternal;
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

// Usage-level failures (missing required flags) are configuration errors.
int Fail(const std::string& message) {
  return Fail(Status::InvalidArgument(message));
}

Result<Tensor> LoadSeriesCsv(const std::string& path) {
  // Accept files with or without a header row.
  auto no_header = ReadCsv(path, false);
  Result<CsvTable> parsed =
      no_header.ok() ? std::move(no_header) : ReadCsv(path, true);
  TRANAD_ASSIGN_OR_RETURN(CsvTable table, std::move(parsed));
  const int64_t rows = static_cast<int64_t>(table.rows.size());
  if (rows == 0) return Status::InvalidArgument(path + ": empty");
  const int64_t cols = static_cast<int64_t>(table.rows.front().size());
  Tensor out({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out.At({r, c}) = static_cast<float>(
          table.rows[static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
  }
  return out;
}

int CmdGenerate(const Args& args) {
  const std::string name = Get(args, "dataset", "SMD");
  const double scale = std::stod(Get(args, "scale", "0.5"));
  const std::string prefix = Get(args, "prefix", name);
  auto ds = GenerateDatasetByName(name, scale);
  if (!ds.ok()) return Fail(ds.status());
  TimeSeries train = ds->train;
  train.labels.clear();
  Status st = SaveTimeSeriesCsv(train, prefix + "_train.csv");
  if (!st.ok()) return Fail(st);
  TimeSeries test_values = ds->test;
  test_values.labels.clear();
  st = SaveTimeSeriesCsv(test_values, prefix + "_test.csv");
  if (!st.ok()) return Fail(st);
  CsvTable labels;
  for (int64_t t = 0; t < ds->test.length(); ++t) {
    std::vector<double> row;
    for (int64_t d = 0; d < ds->dims(); ++d) {
      row.push_back(ds->test.dim_labels.At({t, d}));
    }
    labels.rows.push_back(std::move(row));
  }
  st = WriteCsv(prefix + "_labels.csv", labels);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s_{train,test,labels}.csv (%lld/%lld rows, %lld dims, "
              "%.2f%% anomalous)\n",
              prefix.c_str(), static_cast<long long>(ds->train.length()),
              static_cast<long long>(ds->test.length()),
              static_cast<long long>(ds->dims()),
              100.0 * ds->test.AnomalyRate());
  return 0;
}

int CmdTrain(const Args& args) {
  const std::string train_path = Get(args, "train");
  const std::string model_path = Get(args, "model", "tranad.ckpt");
  if (train_path.empty()) return Fail("--train is required");
  auto series = LoadSeriesCsv(train_path);
  if (!series.ok()) return Fail(series.status());

  TranADConfig config;
  config.window = std::stoll(Get(args, "window", "10"));
  config.seed = std::stoull(Get(args, "seed", "7"));
  TrainOptions options;
  options.max_epochs = std::stoll(Get(args, "epochs", "10"));
  options.verbose = true;
  options.checkpoint_every = std::stoll(Get(args, "checkpoint_every", "0"));
  if (options.checkpoint_every > 0) {
    options.checkpoint_path =
        Get(args, "train_state", model_path + ".train_state");
  }
  options.resume = std::stoll(Get(args, "resume", "1")) != 0;

  TimeSeries train;
  train.name = train_path;
  train.values = std::move(series).value();
  TranADDetector detector(config, options);
  detector.Fit(train);
  const Status st = detector.SaveCheckpoint(model_path);
  if (!st.ok()) return Fail(st);
  std::printf("trained %lld epochs (%.3f s/epoch) on %lld x %lld; model -> "
              "%s\n",
              static_cast<long long>(detector.epochs_run()),
              detector.seconds_per_epoch(),
              static_cast<long long>(train.length()),
              static_cast<long long>(train.dims()), model_path.c_str());
  return 0;
}

int CmdScore(const Args& args) {
  const std::string model_path = Get(args, "model", "tranad.ckpt");
  const std::string input_path = Get(args, "input");
  const std::string output_path = Get(args, "output", "scores.csv");
  if (input_path.empty()) return Fail("--input is required");
  auto input_series = LoadSeriesCsv(input_path);
  if (!input_series.ok()) return Fail(input_series.status());

  // The checkpoint carries config, weights and the fitted normalizer, so no
  // retraining pass over the training CSV is needed (or wanted: rebuilding
  // the detector via a 1-epoch Fit used to waste time and drift from the
  // shipped normalizer on different data).
  auto detector = TranADDetector::FromCheckpoint(model_path);
  if (!detector.ok()) return Fail(detector.status());

  TimeSeries input;
  input.values = std::move(input_series).value();
  const Tensor scores = (*detector)->Score(input);
  CsvTable out;
  for (int64_t d = 0; d < scores.size(1); ++d) {
    out.header.push_back(StrFormat("score%lld", static_cast<long long>(d)));
  }
  for (int64_t t = 0; t < scores.size(0); ++t) {
    std::vector<double> row;
    for (int64_t d = 0; d < scores.size(1); ++d) {
      row.push_back(scores.At({t, d}));
    }
    out.rows.push_back(std::move(row));
  }
  const Status wst = WriteCsv(output_path, out);
  if (!wst.ok()) return Fail(wst);
  std::printf("scored %lld timestamps -> %s\n",
              static_cast<long long>(scores.size(0)), output_path.c_str());
  return 0;
}

int CmdEvaluate(const Args& args) {
  const std::string name = Get(args, "dataset", "SMD");
  const double scale = std::stod(Get(args, "scale", "0.5"));
  const std::string method = Get(args, "method", "TranAD");
  auto ds = GenerateDatasetByName(name, scale);
  if (!ds.ok()) return Fail(ds.status());
  DetectorOptions options;
  options.epochs = std::stoll(Get(args, "epochs", "5"));
  auto detector = CreateDetector(method, options);
  if (!detector.ok()) return Fail(detector.status());
  const EvalOutcome out = EvaluateDetector(detector->get(), *ds);
  std::printf("%s on %s (scale %.2f):\n", method.c_str(), name.c_str(),
              scale);
  std::printf("  P=%.4f R=%.4f AUC=%.4f F1=%.4f\n", out.detection.precision,
              out.detection.recall, out.detection.roc_auc, out.detection.f1);
  std::printf("  diagnosis H@100%%=%.4f N@100%%=%.4f\n",
              out.diagnosis.hitrate_100, out.diagnosis.ndcg_100);
  std::printf("  train %.2fs (%.3f s/epoch), score %.2fs\n", out.fit_seconds,
              out.seconds_per_epoch, out.score_seconds);
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int CmdServe(const Args& args) {
  const std::string model_path = Get(args, "model");
  if (model_path.empty()) return Fail("--model is required");
  const int64_t port = std::stoll(Get(args, "port", "0"));
  const int64_t shards = std::stoll(Get(args, "shards", "4"));
  const int64_t workers = std::stoll(Get(args, "workers", "4"));
  const int64_t batch = std::stoll(Get(args, "batch", "32"));
  const int64_t max_wait_us = std::stoll(Get(args, "max-wait-us", "200"));
  const int64_t queue = std::stoll(Get(args, "queue", "1024"));
  const std::string pot = Get(args, "pot", "SMAP");
  const int64_t duration_s = std::stoll(Get(args, "duration-s", "0"));
  const int64_t degraded_after = std::stoll(Get(args, "degraded-after", "0"));
  const int64_t down_after = std::stoll(Get(args, "down-after", "0"));
  const int64_t drain_timeout_ms =
      std::stoll(Get(args, "drain-timeout-ms", "5000"));
  if (port < 0 || port > 65535) return Fail("--port must be in [0, 65535]");
  if (shards < 1) return Fail("--shards must be >= 1");
  if (workers < 1) return Fail("--workers must be >= 1");
  if (batch < 1) return Fail("--batch must be >= 1");
  if (max_wait_us < 0) return Fail("--max-wait-us must be >= 0");
  if (queue < 1) return Fail("--queue must be >= 1");
  if (degraded_after < 0) return Fail("--degraded-after must be >= 0");
  if (down_after < 0) return Fail("--down-after must be >= 0");
  if (drain_timeout_ms < 0) return Fail("--drain-timeout-ms must be >= 0");

  auto detector = TranADDetector::FromCheckpoint(model_path);
  if (!detector.ok()) return Fail(detector.status());

  serve::ShardRouterOptions router_options;
  router_options.num_shards = shards;
  router_options.shard.num_workers = workers;
  router_options.shard.max_batch = batch;
  router_options.shard.max_wait_us = max_wait_us;
  router_options.shard.queue_capacity = queue;
  router_options.shard.pot = PotParamsForDataset(pot);
  router_options.degraded_after = degraded_after;
  router_options.down_after = down_after;
  serve::ShardRouter router(detector->get(), router_options);

  net::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(port);
  net::NetServer server(&router, server_options);
  const Status started = server.Start();
  if (!started.ok()) return Fail(started);

  // Scraped by scripts (CI net-smoke) to learn the ephemeral port; flushed
  // so a pipe reader sees it before the first client connects.
  std::printf("serving: port=%u shards=%lld workers=%lld batch=%lld "
              "model=%s\n",
              server.port(), static_cast<long long>(shards),
              static_cast<long long>(workers), static_cast<long long>(batch),
              model_path.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  Stopwatch watch;
  while (!g_stop_requested &&
         (duration_s <= 0 ||
          watch.ElapsedSeconds() < static_cast<double>(duration_s))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful shutdown: stop accepting + announce Drain to every client,
  // finish in-flight batches, flush every outbox to the wire, then tear
  // down. A drain that cannot flush in time still exits 0 — shutdown is
  // best-effort delivery, never a hang.
  server.Drain();
  router.Flush();
  const Status drained = server.WaitForDrain(drain_timeout_ms);
  if (!drained.ok()) {
    std::fprintf(stderr, "warning: %s\n", drained.ToString().c_str());
  }
  server.Stop();
  const serve::ServeStatsSnapshot stats = router.stats();
  router.Stop();
  std::printf("served: completed=%lld failed=%lld rejected=%lld "
              "anomalies=%lld p50=%.3fms p99=%.3fms connections=%lld "
              "protocol_errors=%lld shards_failed=%lld "
              "streams_migrated=%lld retries_deduped=%lld\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.anomalies), stats.p50_latency_ms,
              stats.p99_latency_ms,
              static_cast<long long>(server.accepted_total()),
              static_cast<long long>(server.protocol_errors_total()),
              static_cast<long long>(stats.shards_failed),
              static_cast<long long>(stats.streams_migrated),
              static_cast<long long>(server.submits_deduped_total()));
  return kExitOk;
}

int Usage(bool requested) {
  std::fprintf(
      requested ? stdout : stderr,
      "usage: tranad_cli <generate|train|score|evaluate|serve>\n"
      "                  [--key value ...]\n"
      "see the header comment of tools/tranad_cli.cc for per-command flags\n"
      "\n"
      "serve: sharded TCP serving fleet (tranad_cli serve --model m.ckpt\n"
      "  [--port 0] [--shards 4] [--workers 4] [--batch 32]\n"
      "  [--max-wait-us 200] [--queue 1024] [--pot SMAP]\n"
      "  [--duration-s 0] [--degraded-after N] [--down-after N]\n"
      "  [--drain-timeout-ms 5000]); prints the bound port on the\n"
      "  \"serving:\" line and runs until SIGINT/SIGTERM or --duration-s.\n"
      "  Shutdown is a graceful drain (exit 0): stop accepting, send a\n"
      "  Drain frame to every client, finish in-flight batches, flush\n"
      "  outboxes (up to --drain-timeout-ms), then stop. --down-after N\n"
      "  trips a shard to DOWN after N consecutive worker faults and\n"
      "  migrates its streams to live shards (--degraded-after marks it\n"
      "  DEGRADED earlier). Clients should dial with a connect timeout\n"
      "  (serve_loadgen --connect-timeout-ms) and may retry idempotently\n"
      "  (serve_loadgen --retry-ms; the server dedups by stream+tag)\n"
      "\n"
      "exit codes (scriptable; category, not success/failure only):\n"
      "  0  success\n"
      "  2  configuration error: bad usage or flags, invalid/missing\n"
      "     inputs, unknown dataset/method, precondition not met\n"
      "  3  I/O error: unreadable/unwritable files, corrupt or torn\n"
      "     checkpoints (CRC/format failures)\n"
      "  4  internal error: runtime failures that are neither config nor\n"
      "     I/O (internal invariants, resource exhaustion)\n"
      "\n"
      "environment:\n"
      "  TRANAD_FAILPOINTS  arm deterministic fault injection, e.g.\n"
      "                     \"io.checkpoint.fsync=err@2\" (see\n"
      "                     src/common/failpoint.h for the full grammar)\n");
  return requested ? kExitOk : kExitConfig;
}

int Main(int argc, char** argv) {
  // Operators inject faults into real CLI runs the same way tests do; a
  // malformed spec is a configuration error like any other bad flag.
  const Status armed = failpoint::ArmFromEnv();
  if (!armed.ok()) return Fail(armed);
  if (argc < 2) return Usage(false);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return Usage(true);
  const Args args = ParseArgs(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "score") return CmdScore(args);
  if (cmd == "evaluate") return CmdEvaluate(args);
  if (cmd == "serve") return CmdServe(args);
  return Usage(false);
}

}  // namespace
}  // namespace tranad

int main(int argc, char** argv) { return tranad::Main(argc, argv); }
