#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace tranad {
namespace {

/// A perfect oracle detector for pipeline plumbing tests: scores equal the
/// ground-truth dim labels plus small noise.
class OracleDetector : public AnomalyDetector {
 public:
  explicit OracleDetector(const Dataset* ds) : ds_(ds) {}
  std::string name() const override { return "Oracle"; }
  void Fit(const TimeSeries&) override {}
  Tensor Score(const TimeSeries& series) override {
    Tensor scores({series.length(), series.dims()});
    Rng rng(1);
    const bool is_test = series.length() == ds_->test.length() &&
                         series.values.Equals(ds_->test.values);
    for (int64_t t = 0; t < series.length(); ++t) {
      for (int64_t d = 0; d < series.dims(); ++d) {
        float truth = 0.0f;
        if (is_test) truth = ds_->test.dim_labels.At({t, d});
        scores.At({t, d}) =
            truth + 0.01f * static_cast<float>(rng.Uniform());
      }
    }
    return scores;
  }
  double seconds_per_epoch() const override { return 0.0; }

 private:
  const Dataset* ds_;
};

/// A useless detector producing constant scores.
class ConstantDetector : public AnomalyDetector {
 public:
  std::string name() const override { return "Constant"; }
  void Fit(const TimeSeries&) override {}
  Tensor Score(const TimeSeries& series) override {
    return Tensor::Full({series.length(), series.dims()}, 0.5f);
  }
  double seconds_per_epoch() const override { return 0.0; }
};

TEST(PotParamsTest, DatasetSpecificLowQuantiles) {
  EXPECT_NEAR(PotParamsForDataset("SMAP").init_quantile, 0.93, 1e-9);
  EXPECT_NEAR(PotParamsForDataset("MSL").init_quantile, 0.99, 1e-9);
  EXPECT_NEAR(PotParamsForDataset("SMD").init_quantile, 0.999, 1e-9);
  EXPECT_DOUBLE_EQ(PotParamsForDataset("anything").risk, 1e-4);
}

TEST(DetectionScoresTest, MeansOverDims) {
  Tensor scores({2, 2}, {1, 3, 5, 7});
  const auto det = DetectionScores(scores);
  ASSERT_EQ(det.size(), 2u);
  EXPECT_DOUBLE_EQ(det[0], 2.0);
  EXPECT_DOUBLE_EQ(det[1], 6.0);
}

TEST(PipelineTest, OracleGetsPerfectF1) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.1));
  OracleDetector oracle(&ds);
  const EvalOutcome out = EvaluateDetector(&oracle, ds);
  EXPECT_GT(out.detection.f1, 0.99);
  EXPECT_GT(out.detection.roc_auc, 0.99);
  EXPECT_GT(out.diagnosis.hitrate_100, 0.99);
  EXPECT_EQ(out.method, "Oracle");
  EXPECT_EQ(out.dataset, "SMD");
}

TEST(PipelineTest, ConstantDetectorScoresPoorly) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.1));
  ConstantDetector det;
  const EvalOutcome out = EvaluateDetector(&det, ds);
  EXPECT_NEAR(out.detection.roc_auc, 0.5, 1e-6);
  // Best-F1 of an all-equal scorer = predict everything anomalous.
  EXPECT_LT(out.detection.precision, 0.2);
}

TEST(PipelineTest, PotModeProducesThreshold) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.1));
  OracleDetector oracle(&ds);
  PipelineOptions opts;
  opts.mode = ThresholdMode::kPot;
  opts.pot = PotParamsForDataset("SMD");
  const EvalOutcome out = EvaluateDetector(&oracle, ds, opts);
  EXPECT_GT(out.detection.threshold, 0.0);
  // Oracle train scores are near zero; POT threshold separates the planted
  // test anomalies perfectly.
  EXPECT_GT(out.detection.recall, 0.99);
}

TEST(PipelineTest, PerDimensionPotMode) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.1));
  OracleDetector oracle(&ds);
  PipelineOptions opts;
  opts.mode = ThresholdMode::kPotPerDim;
  opts.pot = PotParamsForDataset("SMD");
  const EvalOutcome out = EvaluateDetector(&oracle, ds, opts);
  // Eq. (14)'s OR-aggregation recovers every anomaly; its precision is
  // union-inflated (each dimension contributes its own false-alarm rate),
  // which is inherent to the protocol rather than a defect.
  EXPECT_GT(out.detection.recall, 0.99);
  EXPECT_GT(out.detection.precision, 0.3);
  EXPECT_GT(out.detection.f1, 0.5);
}

TEST(PipelineTest, PotLabelPerDimensionRaster) {
  // Calibration near zero; dimension 1 of the test crosses its threshold.
  Tensor calibration({200, 2});
  Rng rng(3);
  for (int64_t i = 0; i < calibration.numel(); ++i) {
    calibration[i] = static_cast<float>(rng.Uniform() * 0.1);
  }
  Tensor test({10, 2});
  test.At({4, 1}) = 5.0f;
  Tensor raster;
  const auto labels = PotLabelPerDimension(
      calibration, test, PotParams{}, &raster);
  EXPECT_EQ(labels[4], 1);
  EXPECT_EQ(labels[3], 0);
  EXPECT_FLOAT_EQ(raster.At({4, 1}), 1.0f);
  EXPECT_FLOAT_EQ(raster.At({4, 0}), 0.0f);
}

TEST(PipelineTest, TimingFieldsPopulated) {
  Dataset ds = GenerateSynthetic(NabConfig(0.1));
  ConstantDetector det;
  const EvalOutcome out = EvaluateDetector(&det, ds);
  EXPECT_GE(out.fit_seconds, 0.0);
  EXPECT_GE(out.score_seconds, 0.0);
}

TEST(PipelineTest, PointAdjustToggle) {
  Dataset ds = GenerateSynthetic(SmdConfig(0.1));
  OracleDetector oracle(&ds);
  PipelineOptions strict;
  strict.mode = ThresholdMode::kPot;
  strict.point_adjust = false;
  const EvalOutcome out = EvaluateDetector(&oracle, ds, strict);
  // The oracle is exact, so even without point adjustment it stays strong.
  EXPECT_GT(out.detection.f1, 0.9);
}

}  // namespace
}  // namespace tranad
