# Empty dependencies file for train_throughput.
# This may be replaced when dependencies are built.
