#ifndef TRANAD_NN_RNN_H_
#define TRANAD_NN_RNN_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace tranad::nn {

/// Gated recurrent unit cell (Cho et al.), torch gate convention:
///   r = sigmoid(x Wr + h Ur + br)
///   z = sigmoid(x Wz + h Uz + bz)
///   n = tanh(x Wn + r * (h Un + bn))
///   h' = (1 - z) * n + z * h
/// Used by the OmniAnomaly, MTAD-GAT and DAGMM baselines.
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  /// x: [B, input], h: [B, hidden] -> h': [B, hidden].
  Variable Forward(const Variable& x, const Variable& h) const;

  /// Zero initial state for batch size `b`.
  Variable InitialState(int64_t b) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  std::unique_ptr<Linear> x2r_, x2z_, x2n_;
  std::unique_ptr<Linear> h2r_, h2z_, h2n_;
};

/// Long short-term memory cell, used by the LSTM-NDT, MAD-GAN and CAE-M
/// baselines.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  struct State {
    Variable h;
    Variable c;
  };

  /// One step: x [B, input], state (h, c) -> new state.
  State Forward(const Variable& x, const State& state) const;

  State InitialState(int64_t b) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  std::unique_ptr<Linear> x2i_, x2f_, x2g_, x2o_;
  std::unique_ptr<Linear> h2i_, h2f_, h2g_, h2o_;
};

/// Runs a GRU over a [B, T, input] sequence; returns hidden states
/// [B, T, hidden] (concatenated along time).
Variable RunGru(const GruCell& cell, const Variable& seq);

/// Runs an LSTM over a [B, T, input] sequence; returns hidden states
/// [B, T, hidden].
Variable RunLstm(const LstmCell& cell, const Variable& seq);

/// Final hidden state only: [B, hidden].
Variable RunGruLast(const GruCell& cell, const Variable& seq);
Variable RunLstmLast(const LstmCell& cell, const Variable& seq);

}  // namespace tranad::nn

#endif  // TRANAD_NN_RNN_H_
