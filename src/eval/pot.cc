#include "eval/pot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace tranad {

double Quantile(std::vector<double> values, double q) {
  TRANAD_CHECK(!values.empty());
  TRANAD_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

namespace {

// Grimshaw auxiliaries: u(x) = mean(1/(1+x y)), v(x) = 1 + mean(log(1+x y)).
double GrimshawU(const std::vector<double>& y, double x) {
  double s = 0.0;
  for (double v : y) s += 1.0 / (1.0 + x * v);
  return s / static_cast<double>(y.size());
}

double GrimshawV(const std::vector<double>& y, double x) {
  double s = 0.0;
  for (double v : y) s += std::log1p(x * v);
  return 1.0 + s / static_cast<double>(y.size());
}

double GrimshawW(const std::vector<double>& y, double x) {
  return GrimshawU(y, x) * GrimshawV(y, x) - 1.0;
}

double GpdLogLik(const std::vector<double>& y, double gamma, double sigma) {
  const double n = static_cast<double>(y.size());
  if (sigma <= 0.0) return -std::numeric_limits<double>::infinity();
  if (std::fabs(gamma) < 1e-9) {
    double s = 0.0;
    for (double v : y) s += v;
    return -n * std::log(sigma) - s / sigma;
  }
  double s = 0.0;
  for (double v : y) {
    const double arg = 1.0 + gamma * v / sigma;
    if (arg <= 0.0) return -std::numeric_limits<double>::infinity();
    s += std::log(arg);
  }
  return -n * std::log(sigma) - (1.0 + 1.0 / gamma) * s;
}

// Bisection root refinement of w on [a, b] given w(a) and w(b) straddle 0.
double Bisect(const std::vector<double>& y, double a, double b) {
  double fa = GrimshawW(y, a);
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (a + b);
    const double fm = GrimshawW(y, mid);
    if (fa * fm <= 0.0) {
      b = mid;
    } else {
      a = mid;
      fa = fm;
    }
  }
  return 0.5 * (a + b);
}

}  // namespace

GpdFit FitGpdGrimshaw(const std::vector<double>& excesses) {
  TRANAD_CHECK(!excesses.empty());
  GpdFit best;
  best.n_excess = static_cast<int64_t>(excesses.size());

  double y_min = excesses.front();
  double y_max = excesses.front();
  double y_mean = 0.0;
  for (double v : excesses) {
    y_min = std::min(y_min, v);
    y_max = std::max(y_max, v);
    y_mean += v;
  }
  y_mean /= static_cast<double>(excesses.size());

  // Exponential limit (gamma -> 0) as the baseline candidate.
  best.gamma = 0.0;
  best.sigma = std::max(y_mean, 1e-12);
  best.log_lik = GpdLogLik(excesses, 0.0, best.sigma);

  if (y_max <= 0.0) return best;

  // Root search ranges (SPOT reference implementation): the negative
  // branch lives in (-1/y_max, 0); the positive branch in
  // (0, 2 (mean - min) / (mean * min)], which spans many orders of
  // magnitude, so it is scanned log-spaced.
  const double eps = 1e-8;
  const double a_lo = -1.0 / y_max + eps;
  const double a_hi = -eps;
  const double b_hi = 2.0 * (y_mean - y_min) /
                      std::max(y_mean * y_min, 1e-12);

  auto try_root = [&](double prev_x, double prev_w, double x, double w) {
    if (prev_w * w >= 0.0) return;
    const double root = Bisect(excesses, prev_x, x);
    const double v = GrimshawV(excesses, root);
    const double gamma = v - 1.0;
    if (std::fabs(root) > 1e-12) {
      const double sigma = gamma / root;
      const double ll = GpdLogLik(excesses, gamma, sigma);
      if (ll > best.log_lik) {
        best.gamma = gamma;
        best.sigma = sigma;
        best.log_lik = ll;
      }
    }
  };
  auto scan_linear = [&](double lo, double hi) {
    if (!(lo < hi)) return;
    constexpr int kGrid = 40;
    double prev_x = lo;
    double prev_w = GrimshawW(excesses, prev_x);
    for (int i = 1; i <= kGrid; ++i) {
      const double x = lo + (hi - lo) * static_cast<double>(i) / kGrid;
      const double w = GrimshawW(excesses, x);
      try_root(prev_x, prev_w, x, w);
      prev_x = x;
      prev_w = w;
    }
  };
  auto scan_log = [&](double lo, double hi) {
    if (!(lo < hi) || lo <= 0.0) return;
    constexpr int kGrid = 80;
    const double ratio = std::log(hi / lo) / kGrid;
    double prev_x = lo;
    double prev_w = GrimshawW(excesses, prev_x);
    for (int i = 1; i <= kGrid; ++i) {
      const double x = lo * std::exp(ratio * i);
      const double w = GrimshawW(excesses, x);
      try_root(prev_x, prev_w, x, w);
      prev_x = x;
      prev_w = w;
    }
  };
  scan_linear(a_lo, a_hi);
  scan_log(eps, std::max(b_hi, eps * 2.0));
  return best;
}

double PotThreshold(const std::vector<double>& calibration,
                    const PotParams& params) {
  TRANAD_CHECK(!calibration.empty());
  // The paper's init quantiles assume 10^5-scale calibration sets; adapt
  // the peak threshold downwards until enough excesses exist for a stable
  // Grimshaw fit (standard practical SPOT refinement).
  double init_q = params.init_quantile;
  const double n_total = static_cast<double>(calibration.size());
  const double needed =
      static_cast<double>(std::max<int64_t>(params.min_excesses * 3, 30));
  init_q = std::min(init_q, 1.0 - needed / n_total);
  init_q = std::max(init_q, 0.5);
  const double t = Quantile(calibration, init_q);
  std::vector<double> excesses;
  for (double s : calibration) {
    if (s > t) excesses.push_back(s - t);
  }
  const auto n = static_cast<double>(calibration.size());
  if (static_cast<int64_t>(excesses.size()) < params.min_excesses) {
    // Degenerate tail (e.g. near-constant scores): fall back to the
    // empirical high quantile.
    return Quantile(calibration, 1.0 - params.risk);
  }
  const GpdFit fit = FitGpdGrimshaw(excesses);
  const double n_t = static_cast<double>(excesses.size());
  // Extrapolating to exceedance probabilities far below 1/n is meaningless
  // for small calibration sets; floor the risk at ~5 expected exceedances'
  // worth of evidence.
  const double risk = std::max(params.risk, 5.0 / n);
  const double r = risk * n / n_t;
  if (std::fabs(fit.gamma) < 1e-9) {
    return t - fit.sigma * std::log(r);
  }
  return t + fit.sigma / fit.gamma * (std::pow(r, -fit.gamma) - 1.0);
}

StreamingPot::StreamingPot(PotParams params) : params_(params) {}

Status StreamingPot::Initialize(const std::vector<double>& calibration) {
  if (calibration.empty()) {
    return Status::InvalidArgument(
        "SPOT calibration set is empty: cannot fit an initial threshold");
  }
  for (double s : calibration) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument(
          "SPOT calibration set contains a non-finite score");
    }
  }
  double init_q = params_.init_quantile;
  const double needed =
      static_cast<double>(std::max<int64_t>(params_.min_excesses * 3, 30));
  init_q = std::min(init_q,
                    1.0 - needed / static_cast<double>(calibration.size()));
  // Clamp into a valid quantile range even for tiny calibration sets (where
  // 1 - needed/n goes negative) or callers passing init_quantile outside
  // [0, 1].
  init_q = std::clamp(init_q, 0.5, 1.0);
  t_ = Quantile(calibration, init_q);
  peaks_.clear();
  for (double s : calibration) {
    if (s > t_) peaks_.push_back(s - t_);
  }
  n_ = static_cast<int64_t>(calibration.size());
  Refit();
  initialized_ = true;
  return Status::Ok();
}

void StreamingPot::Refit() {
  // Conservative fallback, also used when the fitted level is degenerate:
  // strictly above the peak threshold by a margin proportional to its
  // magnitude, and always finite (covers t_ zero and negative too).
  const double fallback = t_ + std::max(std::fabs(t_) * 0.5, 1e-12);
  if (static_cast<int64_t>(peaks_.size()) < params_.min_excesses) {
    // Too few peaks for a stable fit (including a zero-length tail).
    z_q_ = fallback;
    return;
  }
  const GpdFit fit = FitGpdGrimshaw(peaks_);
  // Floor the risk at ~5 expected exceedances' worth of evidence, and cap
  // it below 1 so the quantile extrapolation stays on the right side of t_.
  const double risk = std::clamp(
      std::max(params_.risk, 5.0 / static_cast<double>(n_)), 1e-300, 1.0);
  const double r = risk * static_cast<double>(n_) /
                   static_cast<double>(peaks_.size());
  double z;
  if (std::fabs(fit.gamma) < 1e-9) {
    z = t_ - fit.sigma * std::log(r);
  } else {
    z = t_ + fit.sigma / fit.gamma * (std::pow(r, -fit.gamma) - 1.0);
  }
  // A constant or near-constant calibration tail can push the GPD fit to a
  // degenerate corner (sigma ~ 0, extreme gamma): never emit a NaN/inf
  // level, never drop the threshold to or below the peak threshold t_, and
  // never go non-positive on non-negative score streams.
  if (!std::isfinite(z) || z <= t_) z = fallback;
  z_q_ = z;
}

bool StreamingPot::Observe(double score) {
  TRANAD_CHECK(initialized_);
  // A non-finite score (NaN/Inf from an upstream numeric blow-up) is
  // anomalous by definition; keep it out of the peak set so one poisoned
  // value cannot wreck the tail model or the threshold.
  if (!std::isfinite(score)) return true;
  ++n_;
  if (score >= z_q_) return true;  // anomaly: do not pollute the tail model
  if (score > t_) {
    peaks_.push_back(score - t_);
    Refit();
  }
  return false;
}

StreamingPotState StreamingPot::ExportState() const {
  StreamingPotState state;
  state.initialized = initialized_;
  state.t = t_;
  state.z_q = z_q_;
  state.n = n_;
  state.peaks = peaks_;
  return state;
}

Status StreamingPot::RestoreState(const StreamingPotState& state) {
  if (!std::isfinite(state.t) || !std::isfinite(state.z_q) || state.n < 0) {
    return Status::InvalidArgument("SPOT state is non-finite or negative");
  }
  for (double p : state.peaks) {
    if (!std::isfinite(p)) {
      return Status::InvalidArgument("SPOT state contains a non-finite peak");
    }
  }
  initialized_ = state.initialized;
  t_ = state.t;
  z_q_ = state.z_q;
  n_ = state.n;
  peaks_ = state.peaks;
  return Status::Ok();
}

double NdtThreshold(const std::vector<double>& errors) {
  TRANAD_CHECK(!errors.empty());
  double mu = 0.0;
  for (double e : errors) mu += e;
  mu /= static_cast<double>(errors.size());
  double var = 0.0;
  for (double e : errors) var += (e - mu) * (e - mu);
  var /= static_cast<double>(errors.size());
  const double sd = std::sqrt(var);

  double best_eps = mu + 2.5 * sd;
  double best_obj = -std::numeric_limits<double>::infinity();
  for (double z = 2.5; z <= 12.0; z += 0.5) {
    const double eps = mu + z * sd;
    // Partition errors; compute the pruning objective of Hundman et al.:
    // (delta mu / mu + delta sigma / sigma) / (|E_a| + |seq|^2).
    std::vector<double> below;
    int64_t above = 0;
    int64_t sequences = 0;
    bool in_seq = false;
    for (double e : errors) {
      if (e > eps) {
        ++above;
        if (!in_seq) {
          ++sequences;
          in_seq = true;
        }
      } else {
        below.push_back(e);
        in_seq = false;
      }
    }
    if (below.empty() || above == 0) continue;
    double mu_b = 0.0;
    for (double e : below) mu_b += e;
    mu_b /= static_cast<double>(below.size());
    double var_b = 0.0;
    for (double e : below) var_b += (e - mu_b) * (e - mu_b);
    var_b /= static_cast<double>(below.size());
    const double delta_mu = mu - mu_b;
    const double delta_sd = sd - std::sqrt(var_b);
    const double denom = static_cast<double>(above) +
                         static_cast<double>(sequences * sequences);
    const double obj =
        (delta_mu / std::max(mu, 1e-12) + delta_sd / std::max(sd, 1e-12)) /
        denom;
    if (obj > best_obj) {
      best_obj = obj;
      best_eps = eps;
    }
  }
  return best_eps;
}

double AnnualMaximumThreshold(const std::vector<double>& calibration,
                              double risk, int64_t block_size) {
  TRANAD_CHECK(!calibration.empty());
  TRANAD_CHECK_GT(block_size, 0);
  std::vector<double> maxima;
  for (size_t i = 0; i < calibration.size();
       i += static_cast<size_t>(block_size)) {
    double m = calibration[i];
    for (size_t j = i;
         j < std::min(calibration.size(), i + static_cast<size_t>(block_size));
         ++j) {
      m = std::max(m, calibration[j]);
    }
    maxima.push_back(m);
  }
  if (maxima.size() < 2) return maxima.front();
  // As with POT, do not extrapolate beyond the evidence: floor the risk at
  // roughly one expected exceedance across the observed blocks.
  risk = std::max(risk, 1.0 / static_cast<double>(maxima.size()));
  // Gumbel fit by the method of moments.
  double mean = 0.0;
  for (double m : maxima) mean += m;
  mean /= static_cast<double>(maxima.size());
  double var = 0.0;
  for (double m : maxima) var += (m - mean) * (m - mean);
  var /= static_cast<double>(maxima.size() - 1);
  const double beta = std::sqrt(6.0 * var) / M_PI;
  const double mu = mean - 0.5772156649 * beta;
  // Return level for exceedance probability `risk` per block.
  return mu - beta * std::log(-std::log(1.0 - risk));
}

}  // namespace tranad
