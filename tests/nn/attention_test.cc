#include "nn/attention.h"

#include <gtest/gtest.h>

#include "tensor/autograd_ops.h"

namespace tranad::nn {
namespace {

TEST(CausalMaskTest, UpperTriangleBlocked) {
  Tensor mask = CausalMask(4);
  EXPECT_EQ(mask.shape(), Shape({4, 4}));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_LT(mask.At({i, j}), -1e8f);
      } else {
        EXPECT_FLOAT_EQ(mask.At({i, j}), 0.0f);
      }
    }
  }
}

class AttentionHeadsTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(AttentionHeadsTest, OutputShapeAndFiniteness) {
  const int64_t heads = GetParam();
  Rng rng(1);
  MultiHeadAttention attn(8, heads, &rng);
  Variable x(Tensor::Randn({2, 5, 8}, &rng));
  Variable y = attn.Forward(x, x, x);
  EXPECT_EQ(y.shape(), Shape({2, 5, 8}));
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.value()[i]));
  }
}

TEST_P(AttentionHeadsTest, AttentionRowsSumToOne) {
  const int64_t heads = GetParam();
  Rng rng(2);
  MultiHeadAttention attn(8, heads, &rng);
  Variable x(Tensor::Randn({1, 6, 8}, &rng));
  attn.Forward(x, x, x);
  const Tensor& w = attn.last_attention();
  ASSERT_EQ(w.shape(), Shape({1, 6, 6}));
  for (int64_t r = 0; r < 6; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 6; ++c) sum += w.At({0, r, c});
    EXPECT_NEAR(sum, 1.0f, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(HeadCounts, AttentionHeadsTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(AttentionTest, CausalMaskZeroesFutureWeights) {
  Rng rng(3);
  MultiHeadAttention attn(4, 2, &rng);
  Variable x(Tensor::Randn({1, 5, 4}, &rng));
  const Tensor mask = CausalMask(5);
  attn.Forward(x, x, x, &mask);
  const Tensor& w = attn.last_attention();
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = i + 1; j < 5; ++j) {
      EXPECT_NEAR(w.At({0, i, j}), 0.0f, 1e-6);
    }
  }
}

TEST(AttentionTest, CausalityProperty) {
  // With a causal mask, changing a future timestamp must not change the
  // output at earlier positions.
  Rng rng(4);
  MultiHeadAttention attn(4, 2, &rng);
  Tensor base = Tensor::Randn({1, 5, 4}, &rng);
  Tensor modified = base;
  for (int64_t j = 0; j < 4; ++j) modified.At({0, 4, j}) += 10.0f;
  const Tensor mask = CausalMask(5);
  const Tensor y1 =
      attn.Forward(Variable(base), Variable(base), Variable(base), &mask)
          .value();
  const Tensor y2 = attn.Forward(Variable(modified), Variable(modified),
                                 Variable(modified), &mask)
                        .value();
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(y1.At({0, t, j}), y2.At({0, t, j}), 1e-4)
          << "position " << t << " leaked future information";
    }
  }
}

TEST(AttentionTest, CrossAttentionShape) {
  Rng rng(5);
  MultiHeadAttention attn(6, 3, &rng);
  Variable q(Tensor::Randn({2, 4, 6}, &rng));
  Variable kv(Tensor::Randn({2, 9, 6}, &rng));
  Variable y = attn.Forward(q, kv, kv);
  EXPECT_EQ(y.shape(), Shape({2, 4, 6}));
  EXPECT_EQ(attn.last_attention().shape(), Shape({2, 4, 9}));
}

TEST(AttentionTest, GradientsReachAllProjections) {
  Rng rng(6);
  MultiHeadAttention attn(4, 2, &rng);
  Variable x(Tensor::Randn({1, 3, 4}, &rng));
  ag::SumAll(attn.Forward(x, x, x)).Backward();
  for (const auto& p : attn.Parameters()) {
    double norm = 0.0;
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      norm += std::fabs(p.grad()[i]);
    }
    EXPECT_GT(norm, 0.0);
  }
}

TEST(AttentionTest, HeadsMustDivideModel) {
  Rng rng(7);
  EXPECT_DEATH(MultiHeadAttention(6, 4, &rng), "divisible");
}

TEST(AttentionTest, UniformKeysGiveUniformWeights) {
  Rng rng(8);
  MultiHeadAttention attn(4, 1, &rng);
  // All timesteps identical -> attention cannot prefer any position.
  Tensor x({1, 4, 4});
  x.Fill(0.7f);
  attn.Forward(Variable(x), Variable(x), Variable(x));
  const Tensor& w = attn.last_attention();
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(w.At({0, r, c}), 0.25f, 1e-5);
    }
  }
}

}  // namespace
}  // namespace tranad::nn
