# Empty dependencies file for table2_detection.
# This may be replaced when dependencies are built.
