// Table 4: anomaly diagnosis — HitRate@100%/150% and NDCG@100%/150% on the
// multivariate SMD and MSDS datasets.
#include "bench/bench_util.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto methods = PaperMethodNames();
  const int64_t epochs = DefaultEpochs();
  std::vector<std::vector<double>> csv;
  int dataset_idx = 0;
  for (const std::string dataset_name : {"SMD", "MSDS"}) {
    const Dataset& ds = BenchDataset(dataset_name);
    std::vector<std::vector<std::string>> rows;
    for (const auto& method : methods) {
      const EvalOutcome out = RunCell(method, ds, epochs);
      const auto& d = out.diagnosis;
      rows.push_back({method, Fmt4(d.hitrate_100), Fmt4(d.hitrate_150),
                      Fmt4(d.ndcg_100), Fmt4(d.ndcg_150)});
      csv.push_back({static_cast<double>(dataset_idx), d.hitrate_100,
                     d.hitrate_150, d.ndcg_100, d.ndcg_150});
      std::fflush(stdout);
    }
    PrintTable("Table 4 (" + dataset_name + "): diagnosis performance",
               {"Method", "H@100%", "H@150%", "N@100%", "N@150%"}, rows);
    ++dataset_idx;
  }
  const auto path = WriteBenchCsv(
      "table4_diagnosis",
      {"dataset_idx", "hit100", "hit150", "ndcg100", "ndcg150"}, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
