#ifndef TRANAD_NN_TRANSFORMER_H_
#define TRANAD_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace tranad::nn {

/// Two-layer position-wise feed-forward block: Linear -> activation ->
/// dropout -> Linear ("Number of layers in feed-forward unit of encoders =
/// 2" in the paper's hyperparameters).
class FeedForward : public Module {
 public:
  FeedForward(int64_t d_model, int64_t d_hidden, int64_t d_out, float dropout_p,
              Rng* rng);

  Variable Forward(const Variable& x, Rng* rng) const;

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
  float dropout_p_;
};

/// Post-norm transformer encoder layer implementing Eq. (4):
///   I1 = LayerNorm(I + MultiHeadAtt(I, I, I))
///   I2 = LayerNorm(I1 + FeedForward(I1))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t d_model, int64_t num_heads, int64_t d_ff,
                          float dropout_p, Rng* rng);

  /// x: [B, T, d_model]; optional additive attention mask [T, T].
  Variable Forward(const Variable& x, Rng* rng,
                   const Tensor* mask = nullptr) const;

  const MultiHeadAttention& self_attention() const { return *self_attn_; }

 private:
  std::unique_ptr<MultiHeadAttention> self_attn_;
  std::unique_ptr<FeedForward> ff_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<LayerNorm> norm2_;
  float dropout_p_;
};

/// Stack of encoder layers ("Number of layers in transformer encoders = 1"
/// by default, but configurable).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t num_layers, int64_t d_model, int64_t num_heads,
                     int64_t d_ff, float dropout_p, Rng* rng);

  Variable Forward(const Variable& x, Rng* rng,
                   const Tensor* mask = nullptr) const;

  const TransformerEncoderLayer& layer(int64_t i) const {
    return *layers_[static_cast<size_t>(i)];
  }
  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

/// TranAD's window encoder implementing Eq. (5): masked self-attention over
/// the window followed by cross-attention that queries the context encoding.
///   I2_1 = Mask(MultiHeadAtt(I2, I2, I2))
///   I2_2 = LayerNorm(I2 + I2_1)
///   I2_3 = LayerNorm(I2_2 + MultiHeadAtt(Q=I2_2, K=I1_2, V=I1_2))
/// followed by a feed-forward + norm block, matching the standard
/// transformer decoder layer the original implementation builds on.
class WindowEncoderLayer : public Module {
 public:
  WindowEncoderLayer(int64_t d_model, int64_t num_heads, int64_t d_ff,
                     float dropout_p, Rng* rng);

  /// window: [B, K, d_model]; context: [B, Tc, d_model] (the I1_2
  /// encoding). `causal` applies the Eq. (5) future mask; disabling it
  /// gives the bidirectional variant the paper proposes as future work.
  Variable Forward(const Variable& window, const Variable& context,
                   Rng* rng, bool causal = true) const;

  const MultiHeadAttention& self_attention() const { return *self_attn_; }
  const MultiHeadAttention& cross_attention() const { return *cross_attn_; }

 private:
  std::unique_ptr<MultiHeadAttention> self_attn_;
  std::unique_ptr<MultiHeadAttention> cross_attn_;
  std::unique_ptr<FeedForward> ff_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<LayerNorm> norm2_;
  std::unique_ptr<LayerNorm> norm3_;
  float dropout_p_;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_TRANSFORMER_H_
