#include "nn/rnn.h"

#include <gtest/gtest.h>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad::nn {
namespace {

TEST(GruCellTest, StateShapes) {
  Rng rng(1);
  GruCell cell(3, 5, &rng);
  Variable h = cell.InitialState(2);
  EXPECT_EQ(h.shape(), Shape({2, 5}));
  Variable x(Tensor::Randn({2, 3}, &rng));
  EXPECT_EQ(cell.Forward(x, h).shape(), Shape({2, 5}));
}

TEST(GruCellTest, HiddenStateBounded) {
  // GRU state is a convex combination of tanh outputs and prior state:
  // starting from zero it must stay in (-1, 1).
  Rng rng(2);
  GruCell cell(2, 4, &rng);
  Variable h = cell.InitialState(1);
  for (int step = 0; step < 50; ++step) {
    Variable x(Tensor::Randn({1, 2}, &rng, 5.0f));
    h = cell.Forward(x, h);
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_GT(h.value()[i], -1.0f);
      EXPECT_LT(h.value()[i], 1.0f);
    }
  }
}

TEST(GruCellTest, ZeroInputZeroStateGivesBoundedUpdate) {
  Rng rng(3);
  GruCell cell(2, 3, &rng);
  Variable h = cell.Forward(Variable(Tensor::Zeros({1, 2})),
                            cell.InitialState(1));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(h.value()[i]));
  }
}

TEST(LstmCellTest, StateShapes) {
  Rng rng(4);
  LstmCell cell(3, 6, &rng);
  auto s = cell.InitialState(2);
  EXPECT_EQ(s.h.shape(), Shape({2, 6}));
  EXPECT_EQ(s.c.shape(), Shape({2, 6}));
  Variable x(Tensor::Randn({2, 3}, &rng));
  auto s2 = cell.Forward(x, s);
  EXPECT_EQ(s2.h.shape(), Shape({2, 6}));
  EXPECT_EQ(s2.c.shape(), Shape({2, 6}));
}

TEST(LstmCellTest, HiddenBoundedByTanh) {
  Rng rng(5);
  LstmCell cell(2, 4, &rng);
  auto s = cell.InitialState(1);
  for (int step = 0; step < 30; ++step) {
    Variable x(Tensor::Randn({1, 2}, &rng, 3.0f));
    s = cell.Forward(x, s);
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_GE(s.h.value()[i], -1.0f);
      EXPECT_LE(s.h.value()[i], 1.0f);
    }
  }
}

TEST(RunGruTest, SequenceOutputShape) {
  Rng rng(6);
  GruCell cell(3, 5, &rng);
  Variable seq(Tensor::Randn({2, 7, 3}, &rng));
  Variable out = RunGru(cell, seq);
  EXPECT_EQ(out.shape(), Shape({2, 7, 5}));
  // Final slice equals RunGruLast.
  Variable last = RunGruLast(cell, seq);
  const Tensor final_step =
      SliceAxis(out.value(), 1, 6, 1).Reshape({2, 5});
  EXPECT_TRUE(final_step.AllClose(last.value(), 1e-5f));
}

TEST(RunLstmTest, SequenceOutputShape) {
  Rng rng(7);
  LstmCell cell(3, 4, &rng);
  Variable seq(Tensor::Randn({2, 6, 3}, &rng));
  Variable out = RunLstm(cell, seq);
  EXPECT_EQ(out.shape(), Shape({2, 6, 4}));
  Variable last = RunLstmLast(cell, seq);
  const Tensor final_step =
      SliceAxis(out.value(), 1, 5, 1).Reshape({2, 4});
  EXPECT_TRUE(final_step.AllClose(last.value(), 1e-5f));
}

TEST(RnnGradTest, BackpropThroughTime) {
  Rng rng(8);
  GruCell cell(2, 3, &rng);
  Variable seq(Tensor::Randn({1, 5, 2}, &rng), /*requires_grad=*/true);
  ag::SumAll(RunGruLast(cell, seq)).Backward();
  // Gradient flows back to every timestep of the input.
  for (int64_t t = 0; t < 5; ++t) {
    double norm = 0.0;
    for (int64_t j = 0; j < 2; ++j) {
      norm += std::fabs(seq.grad().At({0, t, j}));
    }
    EXPECT_GT(norm, 0.0) << "timestep " << t;
  }
}

TEST(RnnGradTest, LstmParamsReceiveGrads) {
  Rng rng(9);
  LstmCell cell(2, 3, &rng);
  Variable seq(Tensor::Randn({2, 4, 2}, &rng));
  ag::SumAll(RunLstmLast(cell, seq)).Backward();
  int nonzero = 0;
  for (const auto& p : cell.Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      if (p.grad()[i] != 0.0f) {
        ++nonzero;
        break;
      }
    }
  }
  EXPECT_GT(nonzero, 10);  // most of the 16 parameter tensors touched
}

TEST(RnnDeterminismTest, SameSeedSameOutput) {
  Rng rng1(10);
  Rng rng2(10);
  GruCell a(2, 3, &rng1);
  GruCell b(2, 3, &rng2);
  Tensor x = Tensor::Ones({1, 4, 2});
  EXPECT_TRUE(RunGruLast(a, Variable(x))
                  .value()
                  .AllClose(RunGruLast(b, Variable(x)).value(), 1e-7f));
}

}  // namespace
}  // namespace tranad::nn
