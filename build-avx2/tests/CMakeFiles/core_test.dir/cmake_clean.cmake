file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/online_detector_test.cc.o"
  "CMakeFiles/core_test.dir/core/online_detector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/robustness_test.cc.o"
  "CMakeFiles/core_test.dir/core/robustness_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tranad_detector_test.cc.o"
  "CMakeFiles/core_test.dir/core/tranad_detector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tranad_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/tranad_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tranad_trainer_test.cc.o"
  "CMakeFiles/core_test.dir/core/tranad_trainer_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
