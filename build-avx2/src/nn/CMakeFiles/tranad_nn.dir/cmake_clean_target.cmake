file(REMOVE_RECURSE
  "libtranad_nn.a"
)
