#ifndef TRANAD_NN_ATTENTION_H_
#define TRANAD_NN_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace tranad::nn {

/// Builds the additive causal mask of Eq. (5): entry (i, j) is 0 for j <= i
/// and -1e9 for j > i, so softmax zeroes attention to future timestamps.
Tensor CausalMask(int64_t t);

/// Multi-head scaled dot-product attention (Eq. (2)-(3)). `num_heads` must
/// divide `d_model`; each head attends in a d_model/num_heads subspace and
/// the heads are concatenated and linearly mixed.
///
/// The layer records the attention weights (averaged over heads) of its most
/// recent forward pass; TranAD's Figure 3 visualization reads them back.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t d_model, int64_t num_heads, Rng* rng);

  /// query: [B, Tq, d], key/value: [B, Tk, d]. `mask` is an optional
  /// additive [Tq, Tk] tensor applied to the attention logits.
  Variable Forward(const Variable& query, const Variable& key,
                   const Variable& value, const Tensor* mask = nullptr) const;

  /// Attention weights of the last forward pass, averaged over heads:
  /// [B, Tq, Tk]. Empty before the first call.
  const Tensor& last_attention() const { return last_attention_; }

  int64_t d_model() const { return d_model_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
  mutable Tensor last_attention_;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_ATTENTION_H_
