// Failure-injection / degenerate-input tests: the detector stack must stay
// finite and well-behaved on pathological series a production system will
// eventually feed it.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/tranad_detector.h"
#include "data/synthetic.h"

namespace tranad {
namespace {

TranADConfig TinyModel() {
  TranADConfig c;
  c.window = 4;
  c.d_ff = 8;
  return c;
}

TrainOptions TinyTrain() {
  TrainOptions o;
  o.max_epochs = 2;
  o.batch_size = 16;
  return o;
}

TimeSeries SeriesFrom(std::vector<float> values, int64_t dims) {
  TimeSeries ts;
  const int64_t t = static_cast<int64_t>(values.size()) / dims;
  ts.values = Tensor({t, dims}, std::move(values));
  return ts;
}

TEST(RobustnessTest, ConstantSeriesStaysFinite) {
  TimeSeries train = SeriesFrom(std::vector<float>(200, 3.5f), 1);
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(train);
  const Tensor scores = det.Score(train);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(scores[i]));
  }
}

TEST(RobustnessTest, ConstantDimensionAmongVaryingOnes) {
  Rng rng(1);
  std::vector<float> values;
  for (int t = 0; t < 150; ++t) {
    values.push_back(static_cast<float>(rng.Normal()));
    values.push_back(7.0f);  // dead sensor
  }
  TimeSeries train = SeriesFrom(std::move(values), 2);
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(train);
  const Tensor scores = det.Score(train);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(scores[i]));
  }
}

TEST(RobustnessTest, SeriesShorterThanWindow) {
  // 3 timestamps with window 4: replication padding must cover it.
  Rng rng(2);
  std::vector<float> values;
  for (int i = 0; i < 3; ++i) values.push_back(static_cast<float>(i));
  TimeSeries train = SeriesFrom(std::move(values), 1);
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(train);
  const Tensor scores = det.Score(train);
  EXPECT_EQ(scores.size(0), 3);
}

TEST(RobustnessTest, ExtremeOutOfRangeTestValues) {
  Rng rng(3);
  std::vector<float> train_vals;
  for (int i = 0; i < 200; ++i) {
    train_vals.push_back(static_cast<float>(rng.Uniform()));
  }
  TimeSeries train = SeriesFrom(std::move(train_vals), 1);
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(train);

  std::vector<float> test_vals(100, 0.5f);
  test_vals[50] = 1e9f;  // sensor glitch far outside the training range
  TimeSeries test = SeriesFrom(std::move(test_vals), 1);
  const Tensor scores = det.Score(test);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(scores[i])) << i;
  }
  // The glitch is the top score (clipped, but still maximal).
  int64_t best = 0;
  for (int64_t i = 1; i < 100; ++i) {
    if (scores.At({i, 0}) > scores.At({best, 0})) best = i;
  }
  EXPECT_EQ(best, 50);
}

TEST(RobustnessTest, RepeatedFitResetsCleanly) {
  Dataset a = GenerateSynthetic(NabConfig(0.05));
  Dataset b = GenerateSynthetic(MbaConfig(0.05));  // different modality!
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(a.train);
  EXPECT_EQ(det.Score(a.test).size(1), 1);
  det.Fit(b.train);  // refit with 2 dims must rebuild the model
  EXPECT_EQ(det.Score(b.test).size(1), 2);
}

TEST(RobustnessTest, ZeroAnomalyTestSeriesScoresLow) {
  // Scoring the (clean) training series: best-F1 machinery degrades
  // gracefully when the "test" has no anomalies at all.
  Dataset ds = GenerateSynthetic(NabConfig(0.05));
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(ds.train);
  const Tensor scores = det.Score(ds.train);
  const auto series = DetectionScores(scores);
  std::vector<uint8_t> no_anomaly(series.size(), 0);
  const double auc = RocAuc(series, no_anomaly);
  EXPECT_DOUBLE_EQ(auc, 0.5);  // degenerate single-class case
}

TEST(RobustnessTest, NegativeValuedSeries) {
  Rng rng(4);
  std::vector<float> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<float>(rng.Normal(-100.0, 5.0)));
  }
  TimeSeries train = SeriesFrom(std::move(values), 1);
  TranADDetector det(TinyModel(), TinyTrain());
  det.Fit(train);  // Eq. 1 normalization handles arbitrary ranges
  const Tensor scores = det.Score(train);
  EXPECT_TRUE(std::isfinite(scores[0]));
}

}  // namespace
}  // namespace tranad
