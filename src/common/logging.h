#ifndef TRANAD_COMMON_LOGGING_H_
#define TRANAD_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace tranad {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log-level threshold; messages below it are dropped. Controlled by
/// the TRANAD_LOG_LEVEL environment variable (debug|info|warning|error) or
/// SetLogLevel(). Default: info.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that flushes one line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tranad

#define TRANAD_LOG(level)                                         \
  ::tranad::internal::LogMessage(::tranad::LogLevel::k##level,    \
                                 __FILE__, __LINE__)

#endif  // TRANAD_COMMON_LOGGING_H_
