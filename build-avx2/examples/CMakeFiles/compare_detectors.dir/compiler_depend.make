# Empty compiler generated dependencies file for compare_detectors.
# This may be replaced when dependencies are built.
