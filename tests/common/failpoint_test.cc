#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

namespace tranad::failpoint {
namespace {

// Every test disarms the global registry on entry and exit so the suite is
// order-independent and never leaks an armed site into another binary run.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(AnyActive());
  const Action a = TRANAD_FAILPOINT("nothing.armed.here");
  EXPECT_FALSE(a.active());
  EXPECT_FALSE(static_cast<bool>(a));
  // The macro short-circuits before Hit(), so no counter exists.
  EXPECT_EQ(HitCount("nothing.armed.here"), 0);
}

TEST_F(FailpointTest, ArmAlwaysFiresEveryHit) {
  Arm("t.always", Action::Error());
  EXPECT_TRUE(AnyActive());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(TRANAD_FAILPOINT("t.always").is_error());
  }
  EXPECT_EQ(HitCount("t.always"), 5);
  EXPECT_EQ(FireCount("t.always"), 5);
}

TEST_F(FailpointTest, UnarmedSiteStaysQuietWhileAnotherIsArmed) {
  Arm("t.armed", Action::Error());
  // AnyActive() is process-wide, so this site takes the slow path — and the
  // registry must still say "no" for it.
  EXPECT_FALSE(TRANAD_FAILPOINT("t.other").active());
  EXPECT_TRUE(TRANAD_FAILPOINT("t.armed").is_error());
}

TEST_F(FailpointTest, OnHitFiresExactlyOnce) {
  Arm("t.nth", Action::Error(), Schedule::OnHit(3));
  EXPECT_FALSE(TRANAD_FAILPOINT("t.nth").active());  // hit 1
  EXPECT_FALSE(TRANAD_FAILPOINT("t.nth").active());  // hit 2
  EXPECT_TRUE(TRANAD_FAILPOINT("t.nth").is_error()); // hit 3
  EXPECT_FALSE(TRANAD_FAILPOINT("t.nth").active());  // hit 4
  EXPECT_EQ(HitCount("t.nth"), 4);
  EXPECT_EQ(FireCount("t.nth"), 1);
}

TEST_F(FailpointTest, EveryKFiresOnMultiples) {
  Arm("t.everyk", Action::Error(), Schedule::EveryK(2));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(TRANAD_FAILPOINT("t.everyk").is_error());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(FireCount("t.everyk"), 3);
}

TEST_F(FailpointTest, HitListFiresOnListedHitsOnly) {
  Arm("t.list", Action::Error(), Schedule::HitList({2, 5}));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(TRANAD_FAILPOINT("t.list").is_error());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true, false}));
}

TEST_F(FailpointTest, RearmResetsHitCounter) {
  Arm("t.rearm", Action::Error(), Schedule::OnHit(2));
  EXPECT_FALSE(TRANAD_FAILPOINT("t.rearm").active());
  EXPECT_TRUE(TRANAD_FAILPOINT("t.rearm").is_error());
  Arm("t.rearm", Action::Error(), Schedule::OnHit(2));  // re-arm: counter -> 0
  EXPECT_EQ(HitCount("t.rearm"), 0);
  EXPECT_FALSE(TRANAD_FAILPOINT("t.rearm").active());
  EXPECT_TRUE(TRANAD_FAILPOINT("t.rearm").is_error());
}

TEST_F(FailpointTest, DisarmDeactivates) {
  Arm("t.disarm", Action::Error());
  EXPECT_TRUE(Disarm("t.disarm"));
  EXPECT_FALSE(Disarm("t.disarm"));  // second disarm: was not armed
  EXPECT_FALSE(AnyActive());
  EXPECT_FALSE(TRANAD_FAILPOINT("t.disarm").active());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint guard("t.scoped", Action::Error());
    EXPECT_TRUE(TRANAD_FAILPOINT("t.scoped").is_error());
  }
  EXPECT_FALSE(AnyActive());
  EXPECT_FALSE(TRANAD_FAILPOINT("t.scoped").active());
}

TEST_F(FailpointTest, ErrorActionCarriesCodeAndContext) {
  Arm("t.status", Action::Error(StatusCode::kUnavailable));
  const Action a = TRANAD_FAILPOINT("t.status");
  ASSERT_TRUE(a.is_error());
  const Status st = a.ToStatus("worker 3");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("injected failure"), std::string::npos);
  EXPECT_NE(st.message().find("worker 3"), std::string::npos);
}

TEST_F(FailpointTest, DelayActionSleepsInHit) {
  Arm("t.delay", Action::Delay(20000));  // 20ms
  const auto start = std::chrono::steady_clock::now();
  const Action a = TRANAD_FAILPOINT("t.delay");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(a.is_delay());
  EXPECT_EQ(a.delay_us, 20000);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            20000);
}

TEST_F(FailpointTest, TruncateActionCarriesByteBudget) {
  Arm("t.trunc", Action::Truncate(7));
  const Action a = TRANAD_FAILPOINT("t.trunc");
  EXPECT_TRUE(a.is_truncate());
  EXPECT_EQ(a.truncate_bytes, 7);
}

TEST_F(FailpointTest, ArmFromSpecParsesFullGrammar) {
  ASSERT_TRUE(ArmFromSpec("a.b=err@3;c.d=delay:5000@every2;e.f=trunc:16;"
                          "g.h=err:unavailable@2,4")
                  .ok());
  // a.b: error on the 3rd hit only.
  EXPECT_FALSE(TRANAD_FAILPOINT("a.b").active());
  EXPECT_FALSE(TRANAD_FAILPOINT("a.b").active());
  EXPECT_TRUE(TRANAD_FAILPOINT("a.b").is_error());
  // c.d: delay on even hits.
  EXPECT_FALSE(TRANAD_FAILPOINT("c.d").active());
  const Action d = TRANAD_FAILPOINT("c.d");
  EXPECT_TRUE(d.is_delay());
  EXPECT_EQ(d.delay_us, 5000);
  // e.f: truncate, always.
  const Action t = TRANAD_FAILPOINT("e.f");
  EXPECT_TRUE(t.is_truncate());
  EXPECT_EQ(t.truncate_bytes, 16);
  // g.h: unavailable error on hits 2 and 4.
  EXPECT_FALSE(TRANAD_FAILPOINT("g.h").active());
  const Action g = TRANAD_FAILPOINT("g.h");
  ASSERT_TRUE(g.is_error());
  EXPECT_EQ(g.code, StatusCode::kUnavailable);
}

TEST_F(FailpointTest, ArmFromSpecOnceFiresFirstHitOnly) {
  ASSERT_TRUE(ArmFromSpec("t.once=err@once").ok());
  EXPECT_TRUE(TRANAD_FAILPOINT("t.once").is_error());
  EXPECT_FALSE(TRANAD_FAILPOINT("t.once").active());
}

TEST_F(FailpointTest, MalformedSpecArmsNothing) {
  const char* bad[] = {
      "no-equals-sign",      "a.b=",           "a.b=explode",
      "a.b=err@zero",        "a.b=delay",      "a.b=trunc:notanum",
      "a.b=err@every0",      "a.b=err@0",      "=err",
      "a.b=delay:-5",
  };
  for (const char* spec : bad) {
    const Status st = ArmFromSpec(spec);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << spec;
    EXPECT_FALSE(AnyActive()) << "spec '" << spec << "' armed something";
  }
  // A partially valid spec must also arm nothing (all-or-nothing parse).
  EXPECT_FALSE(ArmFromSpec("good.site=err;bad.site=bogus").ok());
  EXPECT_FALSE(AnyActive());
  EXPECT_FALSE(TRANAD_FAILPOINT("good.site").active());
}

TEST_F(FailpointTest, ArmFromEnvReadsVariable) {
  ::setenv("TRANAD_FAILPOINTS", "env.site=err:internal@2", 1);
  ASSERT_TRUE(ArmFromEnv().ok());
  ::unsetenv("TRANAD_FAILPOINTS");
  EXPECT_FALSE(TRANAD_FAILPOINT("env.site").active());
  const Action a = TRANAD_FAILPOINT("env.site");
  ASSERT_TRUE(a.is_error());
  EXPECT_EQ(a.code, StatusCode::kInternal);
}

TEST_F(FailpointTest, ArmFromEnvNoOpWhenUnset) {
  ::unsetenv("TRANAD_FAILPOINTS");
  EXPECT_TRUE(ArmFromEnv().ok());
  EXPECT_FALSE(AnyActive());
}

TEST_F(FailpointTest, ConcurrentHitsCountExactly) {
  // 8 threads x 1000 hits on a site firing every 4th: the counters must be
  // exact (TSan-clean and lock-correct), even though which thread observes
  // which firing is unspecified.
  Arm("t.mt", Action::Error(), Schedule::EveryK(4));
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 1000;
  std::atomic<int64_t> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        if (TRANAD_FAILPOINT("t.mt").is_error()) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(HitCount("t.mt"), kThreads * kHitsPerThread);
  EXPECT_EQ(FireCount("t.mt"), kThreads * kHitsPerThread / 4);
  EXPECT_EQ(fired.load(), kThreads * kHitsPerThread / 4);
}

}  // namespace
}  // namespace tranad::failpoint
