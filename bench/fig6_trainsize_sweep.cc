// Figure 6: sensitivity to the training-set size — F1, AUC and training
// time against the fraction of training data (20%..100%), averaged over a
// representative dataset mix (full 11x9 sweeps per fraction exceed the CPU
// budget; TRANAD_FIG6_FULL=1 restores all methods).
#include "bench/bench_util.h"

#include "common/env.h"
#include "data/preprocess.h"

namespace tranad::bench {
namespace {

int Main() {
  std::vector<std::string> methods{"TranAD", "USAD", "OmniAnomaly",
                                   "LSTM-NDT", "GDN"};
  if (EnvInt("TRANAD_FIG6_FULL", 0) != 0) methods = PaperMethodNames();
  const std::vector<std::string> datasets{"NAB", "MBA", "SMD", "MSDS"};
  const std::vector<double> fractions{0.2, 0.4, 0.6, 0.8, 1.0};
  const int64_t epochs = DefaultEpochs();

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  for (const auto& method : methods) {
    for (double frac : fractions) {
      double f1 = 0.0;
      double auc = 0.0;
      double fit_time = 0.0;
      for (const auto& dataset_name : datasets) {
        const Dataset& full = BenchDataset(dataset_name);
        Rng rng(31 + static_cast<uint64_t>(frac * 100));
        Dataset limited;
        limited.name = full.name;
        limited.train = frac >= 1.0
                            ? full.train
                            : SubsampleTrain(full.train, frac, &rng);
        limited.test = full.test;
        DetectorOptions options;
        options.epochs = epochs;
        auto det = CreateDetector(method, options);
        TRANAD_CHECK(det.ok());
        const EvalOutcome out = EvaluateDetector(det->get(), limited);
        f1 += out.detection.f1;
        auc += out.detection.roc_auc;
        fit_time += out.fit_seconds;
      }
      const double n = static_cast<double>(datasets.size());
      rows.push_back({method, Fmt2(frac), Fmt4(f1 / n), Fmt4(auc / n),
                      Fmt2(fit_time)});
      csv.push_back({frac, f1 / n, auc / n, fit_time});
      std::fflush(stdout);
    }
  }
  PrintTable("Figure 6: F1 / AUC / training time vs training-set fraction "
             "(averaged over NAB, MBA, SMD, MSDS)",
             {"Method", "Fraction", "F1", "AUC", "Train s"}, rows);
  const auto path = WriteBenchCsv(
      "fig6_trainsize", {"fraction", "f1", "auc", "train_seconds"}, csv);
  std::printf("\nCSV: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
