# Empty dependencies file for tranad_io.
# This may be replaced when dependencies are built.
