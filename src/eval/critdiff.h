#ifndef TRANAD_EVAL_CRITDIFF_H_
#define TRANAD_EVAL_CRITDIFF_H_

#include <string>
#include <vector>

namespace tranad {

/// Statistical comparison of methods across datasets (Fig. 4): Friedman
/// test on the rank matrix, then pairwise Wilcoxon signed-rank tests at
/// significance `alpha`, rendered as a critical-difference summary.

/// Friedman test result over a methods x datasets score matrix.
struct FriedmanResult {
  double statistic = 0.0;
  double p_value = 1.0;
  /// Average rank per method (1 = best, i.e. highest score).
  std::vector<double> avg_ranks;
};

/// Runs the Friedman test. `scores[i][j]` is method i's score on dataset j;
/// higher is better.
FriedmanResult FriedmanTest(const std::vector<std::vector<double>>& scores);

/// Two-sided Wilcoxon signed-rank test p-value (normal approximation with
/// tie/zero handling per Pratt).
double WilcoxonSignedRankP(const std::vector<double>& a,
                           const std::vector<double>& b);

/// One method's position in the critical-difference diagram.
struct CritDiffEntry {
  std::string method;
  double avg_rank = 0.0;
  /// Index of the clique(s) of methods not significantly different from
  /// this one (for rendering the connecting bars).
  std::vector<int> cliques;
};

struct CritDiffResult {
  FriedmanResult friedman;
  std::vector<CritDiffEntry> entries;  // sorted best rank first
  /// Maximal groups of mutually non-significantly-different methods.
  std::vector<std::vector<int>> cliques;  // indices into `entries`
};

/// Builds the full critical-difference analysis at level `alpha`.
CritDiffResult CriticalDifference(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<double>>& scores, double alpha = 0.05);

/// ASCII rendering of the diagram (methods on a rank axis, bars joining
/// non-significant cliques), printable by the fig4 bench.
std::string RenderCritDiff(const CritDiffResult& result);

/// Regularized lower incomplete gamma P(a, x); exposed for tests.
double RegularizedGammaP(double a, double x);

/// Chi-square survival function (1 - CDF) with k degrees of freedom.
double ChiSquareSf(double x, int k);

}  // namespace tranad

#endif  // TRANAD_EVAL_CRITDIFF_H_
