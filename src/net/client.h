#ifndef TRANAD_NET_CLIENT_H_
#define TRANAD_NET_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "tensor/tensor.h"

namespace tranad::net {

struct ClientOptions {
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// How long a synchronous RPC (CreateStream/CloseStream/Stats/Reload/
  /// Ping) waits for its reply before giving up with DeadlineExceeded.
  int64_t rpc_timeout_ms = 120'000;
  /// TCP connect() deadline. A dead host absorbs SYNs for minutes under
  /// the kernel default; a serving client needs an answer in seconds.
  int64_t connect_timeout_ms = 5'000;
  /// Reconnect/ConnectWithBackoff schedule: capped exponential backoff with
  /// deterministic jitter (see BackoffDelayMs). Attempt k sleeps roughly
  /// min(backoff_initial_ms << k, backoff_max_ms), jittered into
  /// [delay/2, delay) by a SplitMix64 hash of (backoff_seed, k) — seeded,
  /// so tests replay the exact schedule and simultaneous clients with
  /// different seeds don't stampede in lockstep.
  int64_t backoff_initial_ms = 50;
  int64_t backoff_max_ms = 2'000;
  uint64_t backoff_seed = 1;
  /// ConnectWithBackoff gives up (and auto-reconnect stops) after this
  /// many consecutive failed dials. 0 disables auto-reconnect entirely:
  /// a lost connection stays lost, as in a plain Connect() client.
  int64_t reconnect_max_attempts = 0;
  /// Tracked submits (SubmitTracked) are resent when no verdict arrived
  /// within this long, and after a retryable failure verdict
  /// (Unavailable / ResourceExhausted — e.g. a shard mid-failover). The
  /// server dedups by (stream_key, tag), so a resend never double-scores.
  /// 0 disables timer/retry resends (reconnect resends still happen).
  int64_t submit_retry_ms = 0;
  /// A tracked submit that failed retryably this many times completes with
  /// its last failure instead of retrying forever.
  int64_t submit_max_retries = 8;
  /// Send a fire-and-forget Ping after this long with no outgoing traffic,
  /// so half-dead connections (NAT timeout, silent peer death) surface as
  /// read errors instead of infinite silence. 0 disables keepalive.
  int64_t keepalive_ms = 0;
};

/// Deterministic backoff delay for attempt `attempt` (0-based): capped
/// exponential with seeded jitter in [base/2, base). Pure function —
/// identical (attempt, initial, max, seed) always yields the identical
/// delay, which is what makes reconnect schedules unit-testable.
int64_t BackoffDelayMs(int64_t attempt, int64_t initial_ms, int64_t max_ms,
                       uint64_t seed);

/// Client-side resilience counters.
struct ClientCounters {
  int64_t reconnects = 0;       // successful re-dials after a lost connection
  int64_t retries_sent = 0;     // tracked-submit resends (timer or verdict)
  int64_t retries_deduped = 0;  // duplicate verdicts suppressed client-side
  int64_t keepalive_pings = 0;  // idle-connection pings sent
};

/// Blocking TCP client for the serving wire protocol. One background
/// reader thread demultiplexes incoming frames: Verdict frames go to the
/// verdict handler (Submit is fire-and-forget, correlated by the echoed
/// tag), everything else answers the single outstanding synchronous RPC.
/// Submit() may be called from any thread; RPCs serialize among
/// themselves. The verdict handler runs on the reader thread — keep it
/// cheap and do not call back into the client's RPCs from inside it.
///
/// Resilience (all opt-in via ClientOptions):
///   - ConnectWithBackoff retries refused dials on a capped, seeded
///     exponential schedule — the standard fix for the "client starts
///     before the server finishes binding" race.
///   - With reconnect_max_attempts > 0, a lost connection is re-dialed in
///     the background and every pending tracked submit is resent.
///   - SubmitTracked sends with kSubmitFlagIdempotent and guarantees the
///     verdict handler fires exactly once per tag: lost frames are resent,
///     duplicate verdicts are suppressed (counters().retries_deduped), and
///     retryable failures (Unavailable / ResourceExhausted — a queue spike
///     or a shard mid-failover) are retried up to submit_max_retries.
///   - A kDrain frame from the server flips drained(): retries and
///     reconnects stop, in-flight verdicts still deliver, and the eventual
///     close is not treated as a failure.
class NetClient {
 public:
  using VerdictHandler = std::function<void(const WireVerdict&)>;

  explicit NetClient(ClientOptions options = {});
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Must be set before Connect (the reader thread reads it unguarded).
  void set_verdict_handler(VerdictHandler handler) {
    handler_ = std::move(handler);
  }

  Status Connect(const std::string& host, uint16_t port);
  /// Connect, retrying refused/timed-out dials on the backoff schedule.
  /// `max_attempts` <= 0 uses options.reconnect_max_attempts (and if that
  /// is also 0, a single attempt). Returns the last dial failure.
  Status ConnectWithBackoff(const std::string& host, uint16_t port,
                            int64_t max_attempts = 0);
  /// Shuts the socket down and joins the reader. Idempotent.
  void Close();
  bool connected() const { return fd_.load(std::memory_order_acquire) >= 0; }
  /// True once the server announced a graceful drain on this connection.
  bool drained() const { return drained_.load(std::memory_order_acquire); }

  /// Fire-and-forget: one observation for `stream_key`. The verdict (or
  /// the admission failure, seq=-1) arrives at the verdict handler with
  /// `tag` echoed. Fails only on transport errors. No retry, no dedup —
  /// the at-most-once flavor.
  Status Submit(uint64_t stream_key, uint64_t tag, const float* values,
                int64_t dims);

  /// Exactly-once flavor: sends with the idempotent flag and tracks the
  /// submission until a final verdict arrives (see class comment). `tag`
  /// must be unique per logical observation on this stream. The call
  /// itself only fails on immediate, non-recoverable errors; with
  /// reconnect enabled a send into a dead connection is queued and resent
  /// once the connection returns.
  Status SubmitTracked(uint64_t stream_key, uint64_t tag, const float* values,
                       int64_t dims);

  /// Tracked submissions whose final verdict has not arrived yet.
  int64_t pending_tracked() const;
  ClientCounters counters() const;

  /// Registers + calibrates a stream on the fleet. `calibration` is
  /// [rows, dims]. Returns the server's ack status.
  Status CreateStream(uint64_t stream_key, const Tensor& calibration);
  Status CloseStream(uint64_t stream_key);
  Result<serve::ServeStatsSnapshot> Stats();
  /// Rolling fleet reload; blocks until the server finishes (or rpc
  /// timeout — the reload itself may still complete server-side).
  Status Reload(const std::string& path);
  Status Ping();

 private:
  /// A reply frame captured for the RPC waiter (payload copied out of the
  /// reader's buffer, since the buffer rolls forward immediately).
  struct OwnedFrame {
    FrameType type = FrameType::kPing;
    std::vector<uint8_t> payload;
  };

  using TrackedKey = std::pair<uint64_t, uint64_t>;  // (stream_key, tag)
  struct TrackedSubmit {
    std::vector<uint8_t> bytes;  // the encoded frame, resent verbatim
    int64_t retries = 0;
    std::chrono::steady_clock::time_point next_send;
    WireVerdict last_failure;  // delivered if retries run out
    bool has_failure = false;
  };

  /// One dial attempt honoring connect_timeout_ms (non-blocking connect +
  /// poll). On success *out_fd holds a connected blocking socket.
  Status DialOnce(const std::string& host, uint16_t port, int* out_fd);
  /// Installs a freshly dialed fd and starts the reader (start_mu_ held).
  void AdoptSocket(int fd);
  Status SendBytes(const std::vector<uint8_t>& bytes);
  /// Sends `bytes`, waits for a frame of type `expect` (or kError), and
  /// copies it to *reply.
  Status Rpc(const std::vector<uint8_t>& bytes, FrameType expect,
             OwnedFrame* reply);
  void ReaderThread();
  void MaintenanceThread();
  /// Tracked-verdict demux (runs on the reader thread): exactly-once
  /// delivery, retry scheduling, duplicate suppression.
  void OnVerdict(const WireVerdict& verdict);
  /// Fails any RPC in flight and marks the connection dead.
  void FailPending(const Status& status);
  /// Completes every pending tracked submit with `status` (terminal
  /// transport failure: reconnect exhausted or client closing).
  void AbortTracked(const Status& status);

  ClientOptions options_;
  VerdictHandler handler_;
  std::atomic<int> fd_{-1};
  std::thread reader_;

  /// Guards connection lifecycle (Connect/Close/reconnect) — the reader_
  /// thread object, remote_host_/remote_port_, and closing_.
  std::mutex start_mu_;
  std::string remote_host_;
  uint16_t remote_port_ = 0;
  bool closing_ = false;

  std::atomic<bool> drained_{false};
  /// Reader exited on error; the maintenance thread should reconnect.
  std::atomic<bool> conn_dead_{false};

  std::mutex send_mu_;  // serializes socket writes (frames stay whole)
  std::mutex rpc_mu_;   // one outstanding synchronous RPC at a time

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool rpc_active_ = false;
  FrameType rpc_expect_ = FrameType::kPing;
  bool rpc_done_ = false;
  OwnedFrame rpc_reply_;
  Status conn_status_;  // first transport/protocol failure, sticky

  mutable std::mutex tracked_mu_;
  std::map<TrackedKey, TrackedSubmit> tracked_;
  /// Tags already completed, for duplicate-verdict suppression (bounded).
  std::set<TrackedKey> done_tags_;
  std::deque<TrackedKey> done_tags_lru_;

  /// Timer thread for keepalive, tracked-submit resends, and reconnect;
  /// parked on maint_cv_ when nothing is enabled.
  std::thread maintenance_;
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::chrono::steady_clock::time_point last_send_{};

  mutable std::mutex counters_mu_;
  ClientCounters counters_;
};

}  // namespace tranad::net

#endif  // TRANAD_NET_CLIENT_H_
