#ifndef TRANAD_TESTS_NET_FLEET_FIXTURE_H_
#define TRANAD_TESTS_NET_FLEET_FIXTURE_H_

#include <vector>

#include "core/online_detector.h"
#include "core/pipeline.h"
#include "data/synthetic.h"

namespace tranad::net {

/// One small trained detector + synthetic datasets shared by every network
/// test in this binary (training is the expensive part; the tests exercise
/// sockets and framing, not learning). Lazily built on first use.
struct TestFleet {
  TranADDetector* detector = nullptr;
  std::vector<Dataset> datasets;

  static constexpr uint64_t kNumStreams = 2;

  static TestFleet& Get() {
    static TestFleet* fleet = [] {
      auto* f = new TestFleet;
      auto config = SmapConfig(0.2);
      config.anomaly_magnitude = 1.6;
      for (uint64_t s = 0; s < kNumStreams; ++s) {
        config.seed = 242 + s;
        f->datasets.push_back(GenerateSynthetic(config));
      }
      TranADConfig model_config;
      model_config.window = 8;
      model_config.d_ff = 16;
      TrainOptions train;
      train.max_epochs = 2;
      f->detector = new TranADDetector(model_config, train);
      f->detector->Fit(f->datasets[0].train);
      return f;
    }();
    return *fleet;
  }

  Tensor Observation(uint64_t s, int64_t t) const {
    const TimeSeries& series = datasets[s].test;
    Tensor row({series.dims()});
    for (int64_t d = 0; d < series.dims(); ++d) {
      row[d] = series.values.At({t, d});
    }
    return row;
  }
};

}  // namespace tranad::net

#endif  // TRANAD_TESTS_NET_FLEET_FIXTURE_H_
