#include "tensor/autograd_ops.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

TEST(VariableTest, LeafBasics) {
  Variable v(Tensor::Ones({2}), true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.shape(), Shape({2}));
  Variable null;
  EXPECT_FALSE(null.defined());
}

TEST(VariableTest, ConstLeafGetsNoGrad) {
  Variable a(Tensor::Ones({2}), false);
  Variable b(Tensor::Ones({2}), true);
  Variable loss = ag::SumAll(ag::Mul(a, b));
  loss.Backward();
  // a never accumulates (not requires_grad).
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable v(Tensor::Ones({2}), true);
  Variable y = ag::MulScalar(v, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(VariableTest, BackwardWithSeed) {
  Variable v(Tensor::Ones({2}), true);
  Variable y = ag::MulScalar(v, 3.0f);
  y.Backward(Tensor({2}, {1.0f, 2.0f}));
  EXPECT_FLOAT_EQ(v.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(v.grad()[1], 6.0f);
}

TEST(VariableTest, GradAccumulatesAcrossUses) {
  // y = sum(x + x) -> dy/dx = 2.
  Variable x(Tensor::Ones({3}), true);
  Variable loss = ag::SumAll(ag::Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(VariableTest, ZeroGradClears) {
  Variable x(Tensor::Ones({2}), true);
  ag::SumAll(x).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(VariableTest, DetachBlocksGradient) {
  Variable x(Tensor::Full({2}, 3.0f), true);
  Variable d = ag::MulScalar(x, 2.0f).Detach();
  Variable loss = ag::SumAll(ag::Mul(d, x));
  loss.Backward();
  // Only the direct x path contributes: d treated as constant 6.
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(VariableTest, ClearTapeGradientsEnablesSecondBackward) {
  Variable x(Tensor::Full({2}, 2.0f), true);
  Variable mid = ag::Square(x);
  Variable loss1 = ag::SumAll(mid);
  Variable loss2 = ag::SumAll(ag::MulScalar(mid, 3.0f));
  loss1.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  loss1.ClearTapeGradients();
  loss2.ClearTapeGradients();
  loss2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);  // fresh, not 4 + 12
}

TEST(AutogradOpsTest, AddBroadcastGradReduces) {
  Variable a(Tensor::Ones({2, 3}), true);
  Variable b(Tensor::Ones({3}), true);
  ag::SumAll(ag::Add(a, b)).Backward();
  EXPECT_EQ(b.grad().shape(), Shape({3}));
  EXPECT_FLOAT_EQ(b.grad()[0], 2.0f);  // summed over broadcast axis
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
}

TEST(AutogradOpsTest, MulGradIsOtherOperand) {
  Variable a(Tensor({2}, {2.0f, 3.0f}), true);
  Variable b(Tensor({2}, {5.0f, 7.0f}), true);
  ag::SumAll(ag::Mul(a, b)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 3.0f);
}

TEST(AutogradOpsTest, DivGrad) {
  Variable a(Tensor({1}, {6.0f}), true);
  Variable b(Tensor({1}, {2.0f}), true);
  ag::SumAll(ag::Div(a, b)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.5f);
  EXPECT_FLOAT_EQ(b.grad()[0], -1.5f);  // -a/b^2
}

TEST(AutogradOpsTest, MatMulGradShapes) {
  Variable a(Tensor::Ones({2, 3}), true);
  Variable b(Tensor::Ones({3, 4}), true);
  ag::SumAll(ag::MatMul(a, b)).Backward();
  EXPECT_EQ(a.grad().shape(), Shape({2, 3}));
  EXPECT_EQ(b.grad().shape(), Shape({3, 4}));
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);  // row-sum of ones(3,4)
  EXPECT_FLOAT_EQ(b.grad()[0], 2.0f);
}

TEST(AutogradOpsTest, BatchedMatMulBroadcastGrad) {
  Variable a(Tensor::Ones({4, 2, 3}), true);
  Variable b(Tensor::Ones({3, 2}), true);  // broadcast over batch
  ag::SumAll(ag::MatMul(a, b)).Backward();
  EXPECT_EQ(b.grad().shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(b.grad()[0], 8.0f);  // 4 batches x 2 rows
}

TEST(AutogradOpsTest, SliceGradScattersZeros) {
  Variable x(Tensor::Ones({4, 2}), true);
  ag::SumAll(ag::SliceAxis(x, 0, 1, 2)).Backward();
  EXPECT_FLOAT_EQ(x.grad().At({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().At({1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().At({2, 1}), 1.0f);
  EXPECT_FLOAT_EQ(x.grad().At({3, 1}), 0.0f);
}

TEST(AutogradOpsTest, ConcatSplitsGrad) {
  Variable a(Tensor::Ones({2, 1}), true);
  Variable b(Tensor::Ones({2, 2}), true);
  Variable y = ag::Concat({a, b}, 1);
  y.Backward(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  EXPECT_FLOAT_EQ(a.grad().At({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(a.grad().At({1, 0}), 4.0f);
  EXPECT_FLOAT_EQ(b.grad().At({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(b.grad().At({1, 1}), 6.0f);
}

TEST(AutogradOpsTest, ReshapeGradReshapesBack) {
  Variable x(Tensor::Ones({2, 3}), true);
  ag::SumAll(ag::Reshape(x, {6})).Backward();
  EXPECT_EQ(x.grad().shape(), Shape({2, 3}));
}

TEST(AutogradOpsTest, MeanAxisGrad) {
  Variable x(Tensor::Ones({2, 4}), true);
  ag::SumAll(ag::Mean(x, 1, false)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.25f);
}

TEST(AutogradOpsTest, SumAxisKeepdimsGrad) {
  Variable x(Tensor::Ones({2, 3}), true);
  ag::SumAll(ag::Sum(x, 0, true)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(AutogradOpsTest, MseLossValueAndGrad) {
  Variable pred(Tensor({2}, {1.0f, 3.0f}), true);
  Tensor target({2}, {0.0f, 1.0f});
  Variable loss = ag::MseLoss(pred, target);
  EXPECT_NEAR(loss.value().Item(), (1.0f + 4.0f) / 2.0f, 1e-6);
  loss.Backward();
  EXPECT_NEAR(pred.grad()[0], 1.0f, 1e-6);   // 2*(1-0)/2
  EXPECT_NEAR(pred.grad()[1], 2.0f, 1e-6);
}

TEST(AutogradOpsTest, MseLossVarBothSidesGetGrads) {
  Variable a(Tensor({1}, {2.0f}), true);
  Variable b(Tensor({1}, {0.0f}), true);
  ag::MseLossVar(a, b).Backward();
  EXPECT_NEAR(a.grad()[0], 4.0f, 1e-6);
  EXPECT_NEAR(b.grad()[0], -4.0f, 1e-6);
}

TEST(DropoutTest, EvalIsIdentity) {
  Rng rng(3);
  Variable x(Tensor::Ones({100}), true);
  Variable y = ag::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y.value().Equals(x.value()));
}

TEST(DropoutTest, TrainZeroesAndScales) {
  Rng rng(4);
  Variable x(Tensor::Ones({10000}), true);
  Variable y = ag::Dropout(x, 0.25f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 1.0f / 0.75f) < 1e-5);
    zeros += v == 0.0f;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.02);
}

TEST(DropoutTest, GradUsesSameMask) {
  Rng rng(5);
  Variable x(Tensor::Ones({1000}), true);
  Variable y = ag::Dropout(x, 0.5f, true, &rng);
  ag::SumAll(y).Backward();
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], y.value()[i]);
  }
}

TEST(AutogradOpsTest, SwapAxes12GradRoundTrip) {
  Variable x(Tensor::Ones({2, 3, 4, 5}), true);
  ag::SumAll(ag::SwapAxes12(x)).Backward();
  EXPECT_EQ(x.grad().shape(), Shape({2, 3, 4, 5}));
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(AutogradOpsTest, DeepChainComposes) {
  // loss = mean(sigmoid(W x)^2) through several ops; check it runs and
  // produces finite gradients.
  Rng rng(6);
  Variable w(Tensor::Randn({4, 4}, &rng), true);
  Variable x(Tensor::Randn({8, 4}, &rng), true);
  Variable y = ag::Sigmoid(ag::MatMul(x, w));
  y = ag::LayerNormLastDim(y, 1e-5f);
  y = ag::Gelu(y);
  Variable loss = ag::MeanAll(ag::Square(y));
  loss.Backward();
  for (int64_t i = 0; i < w.grad().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(w.grad()[i]));
  }
}

}  // namespace
}  // namespace tranad
