#ifndef TRANAD_EVAL_DIAGNOSIS_H_
#define TRANAD_EVAL_DIAGNOSIS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tranad {

/// Anomaly-diagnosis quality (Table 4): how well per-dimension anomaly
/// scores rank the truly anomalous dimensions at each anomalous timestamp.
struct DiagnosisMetrics {
  double hitrate_100 = 0.0;  // HitRate@100%
  double hitrate_150 = 0.0;  // HitRate@150%
  double ndcg_100 = 0.0;     // NDCG@100%
  double ndcg_150 = 0.0;     // NDCG@150%
  int64_t evaluated_timestamps = 0;
};

/// Computes HitRate@P% and NDCG@P% (§4.2.2). `scores` is [T, m] per-dimension
/// anomaly scores; `dim_truth` is [T, m] binary ground truth. For each
/// timestamp with g > 0 true anomalous dimensions, the top ceil(P/100 * g)
/// score-ranked dimensions are taken as the model's candidates:
/// HitRate is the fraction of true dimensions covered; NDCG uses binary
/// relevance with the ideal DCG over g ones.
DiagnosisMetrics EvaluateDiagnosis(const Tensor& scores,
                                   const Tensor& dim_truth);

}  // namespace tranad

#endif  // TRANAD_EVAL_DIAGNOSIS_H_
