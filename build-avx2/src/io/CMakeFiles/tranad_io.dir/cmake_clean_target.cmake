file(REMOVE_RECURSE
  "libtranad_io.a"
)
