#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace tranad {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTripWithHeader) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{1.0, 2.0}, {3.5, -4.0}};
  const std::string path = TempPath("round.csv");
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto back = ReadCsv(path, true);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header, table.header);
  ASSERT_EQ(back->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(back->rows[1][0], 3.5);
  EXPECT_DOUBLE_EQ(back->rows[1][1], -4.0);
}

TEST_F(CsvTest, ReadWithoutHeader) {
  const std::string path = TempPath("nohdr.csv");
  WriteFile(path, "1,2\n3,4\n");
  auto table = ReadCsv(path, false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->header.empty());
  ASSERT_EQ(table->rows.size(), 2u);
}

TEST_F(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  WriteFile(path, "1,2\n\n3,4\n\n");
  auto table = ReadCsv(path, false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  auto table = ReadCsv(TempPath("definitely_missing.csv"), false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, NonNumericCellRejected) {
  const std::string path = TempPath("badcell.csv");
  WriteFile(path, "1,2\n3,oops\n");
  auto table = ReadCsv(path, false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RaggedRowsRejected) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "1,2\n3\n");
  auto table = ReadCsv(path, false);
  ASSERT_FALSE(table.ok());
}

TEST_F(CsvTest, HeaderParsedAndTrimmed) {
  const std::string path = TempPath("hdr.csv");
  WriteFile(path, " x , y \n1,2\n");
  auto table = ReadCsv(path, true);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->header.size(), 2u);
  EXPECT_EQ(table->header[0], "x");
  EXPECT_EQ(table->header[1], "y");
}

TEST_F(CsvTest, CrlfLineEndingsParsedCleanly) {
  // Windows-exported files terminate lines with \r\n; the \r must not leak
  // into the last cell (or the header name).
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,b\r\n1,2\r\n3,4.5\r\n");
  auto table = ReadCsv(path, true);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->header.size(), 2u);
  EXPECT_EQ(table->header[1], "b");
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[1][1], 4.5);
}

TEST_F(CsvTest, TrailingDelimiterDoesNotAddPhantomColumn) {
  const std::string path = TempPath("trailing.csv");
  WriteFile(path, "x,y,\n1,2,\n3,4,\n");
  auto table = ReadCsv(path, true);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->header.size(), 2u);
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0].size(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[1][0], 3.0);
}

TEST_F(CsvTest, CrlfWithTrailingDelimiterCombined) {
  const std::string path = TempPath("crlf_trailing.csv");
  WriteFile(path, "1,2,\r\n3,4,\r\n");
  auto table = ReadCsv(path, false);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0].size(), 2u);
}

TEST_F(CsvTest, NonFiniteCellsRejected) {
  // strtod accepts "nan"/"inf" spellings; letting them through poisons the
  // normalizer fit and every loss downstream.
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "INFINITY"}) {
    const std::string path = TempPath("nonfinite.csv");
    WriteFile(path, std::string("1,2\n3,") + bad + "\n");
    auto table = ReadCsv(path, false);
    ASSERT_FALSE(table.ok()) << "cell '" << bad << "' was accepted";
    EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(CsvTest, EmptyInteriorCellRejected) {
  const std::string path = TempPath("emptycell.csv");
  WriteFile(path, "1,,3\n");
  auto table = ReadCsv(path, false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, WriteWithoutHeaderOmitsHeaderLine) {
  CsvTable table;
  table.rows = {{1.5}};
  const std::string path = TempPath("noheader_out.csv");
  ASSERT_TRUE(WriteCsv(path, table).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "1.5");
}

}  // namespace
}  // namespace tranad
