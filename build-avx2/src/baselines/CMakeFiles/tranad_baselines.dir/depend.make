# Empty dependencies file for tranad_baselines.
# This may be replaced when dependencies are built.
