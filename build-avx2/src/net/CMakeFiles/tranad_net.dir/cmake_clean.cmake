file(REMOVE_RECURSE
  "CMakeFiles/tranad_net.dir/client.cc.o"
  "CMakeFiles/tranad_net.dir/client.cc.o.d"
  "CMakeFiles/tranad_net.dir/server.cc.o"
  "CMakeFiles/tranad_net.dir/server.cc.o.d"
  "CMakeFiles/tranad_net.dir/wire.cc.o"
  "CMakeFiles/tranad_net.dir/wire.cc.o.d"
  "libtranad_net.a"
  "libtranad_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
