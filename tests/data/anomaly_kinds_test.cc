// Per-kind generator properties: each anomaly type in the taxonomy must be
// injectable in isolation, labeled exactly, and produce its characteristic
// signature in the data.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace tranad {
namespace {

SyntheticConfig SingleKindConfig(AnomalyKind kind) {
  SyntheticConfig c;
  c.name = "single-kind";
  c.dims = 4;
  c.train_len = 600;
  c.test_len = 600;
  c.anomaly_rate = 0.06;
  c.noise = 0.04;
  c.period = 50;
  c.benign_rate = 0.0;
  c.anomaly_mix = {{kind, 1.0}};
  c.seed = 77 + static_cast<uint64_t>(kind);
  return c;
}

class AnomalyKindTest : public ::testing::TestWithParam<AnomalyKind> {};

TEST_P(AnomalyKindTest, InjectsLabeledAnomalies) {
  const Dataset ds = GenerateSynthetic(SingleKindConfig(GetParam()));
  EXPECT_GT(ds.test.AnomalyRate(), 0.01);
  EXPECT_LT(ds.test.AnomalyRate(), 0.15);
  // Per-dimension labels exist and are consistent.
  bool any_dim_label = false;
  for (int64_t t = 0; t < ds.test.length(); ++t) {
    for (int64_t d = 0; d < ds.dims(); ++d) {
      any_dim_label |= ds.test.dim_labels.At({t, d}) != 0.0f;
    }
  }
  EXPECT_TRUE(any_dim_label);
}

TEST_P(AnomalyKindTest, AnomalousValuesDeviateFromClean) {
  // Regenerate with the same seed but no anomalies: the labeled cells must
  // differ between the two versions, unlabeled cells must not.
  SyntheticConfig with = SingleKindConfig(GetParam());
  SyntheticConfig without = with;
  without.anomaly_rate = 1e-9;  // effectively none
  const Dataset a = GenerateSynthetic(with);
  const Dataset b = GenerateSynthetic(without);
  ASSERT_EQ(a.test.length(), b.test.length());

  double labeled_dev = 0.0;
  int64_t labeled_n = 0;
  for (int64_t t = 0; t < a.test.length(); ++t) {
    for (int64_t d = 0; d < a.dims(); ++d) {
      const double dev =
          std::fabs(a.test.values.At({t, d}) - b.test.values.At({t, d}));
      if (a.test.dim_labels.At({t, d}) != 0.0f) {
        labeled_dev += dev;
        ++labeled_n;
      }
    }
  }
  ASSERT_GT(labeled_n, 0);
  EXPECT_GT(labeled_dev / labeled_n, 0.01)
      << "labeled cells should carry the injected deviation";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AnomalyKindTest,
    ::testing::Values(AnomalyKind::kSpike, AnomalyKind::kLevelShift,
                      AnomalyKind::kContextual, AnomalyKind::kMild,
                      AnomalyKind::kFrequency, AnomalyKind::kCascade,
                      AnomalyKind::kDropout),
    [](const ::testing::TestParamInfo<AnomalyKind>& info) {
      switch (info.param) {
        case AnomalyKind::kSpike: return std::string("Spike");
        case AnomalyKind::kLevelShift: return std::string("LevelShift");
        case AnomalyKind::kContextual: return std::string("Contextual");
        case AnomalyKind::kMild: return std::string("Mild");
        case AnomalyKind::kFrequency: return std::string("Frequency");
        case AnomalyKind::kCascade: return std::string("Cascade");
        case AnomalyKind::kDropout: return std::string("Dropout");
      }
      return std::string("Unknown");
    });

TEST(AnomalyKindTest, SpikesAreShort) {
  const Dataset ds =
      GenerateSynthetic(SingleKindConfig(AnomalyKind::kSpike));
  // Longest anomaly run for pure spikes must be short.
  int64_t longest = 0;
  int64_t current = 0;
  for (uint8_t l : ds.test.labels) {
    current = l != 0 ? current + 1 : 0;
    longest = std::max(longest, current);
  }
  EXPECT_LE(longest, 8);
}

TEST(AnomalyKindTest, DropoutFlattensSignal) {
  const Dataset ds =
      GenerateSynthetic(SingleKindConfig(AnomalyKind::kDropout));
  // Within dropout segments the affected dimension is near-constant.
  for (int64_t t = 1; t < ds.test.length(); ++t) {
    for (int64_t d = 0; d < ds.dims(); ++d) {
      if (ds.test.dim_labels.At({t, d}) != 0.0f &&
          ds.test.dim_labels.At({t - 1, d}) != 0.0f) {
        EXPECT_NEAR(ds.test.values.At({t, d}),
                    ds.test.values.At({t - 1, d}), 1e-4);
      }
    }
  }
}

TEST(AnomalyKindTest, CascadeRootPrecedesFollowers) {
  SyntheticConfig c = SingleKindConfig(AnomalyKind::kCascade);
  c.dims = 8;
  const Dataset ds = GenerateSynthetic(c);
  // For each anomaly segment, the set of affected dims grows over time
  // (later dims join with a lag) — verify at least one segment shows a
  // strictly increasing affected-dim count from its first to middle part.
  bool found_growth = false;
  int64_t t = 0;
  while (t < ds.test.length()) {
    if (ds.test.labels[static_cast<size_t>(t)] == 0) {
      ++t;
      continue;
    }
    int64_t end = t;
    while (end < ds.test.length() &&
           ds.test.labels[static_cast<size_t>(end)] != 0) {
      ++end;
    }
    auto affected = [&](int64_t at) {
      int64_t n = 0;
      for (int64_t d = 0; d < ds.dims(); ++d) {
        n += ds.test.dim_labels.At({at, d}) != 0.0f;
      }
      return n;
    };
    if (end - t >= 6 && affected(t) < affected((t + end) / 2)) {
      found_growth = true;
    }
    t = end;
  }
  EXPECT_TRUE(found_growth);
}

}  // namespace
}  // namespace tranad
