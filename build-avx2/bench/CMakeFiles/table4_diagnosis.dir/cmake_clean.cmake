file(REMOVE_RECURSE
  "CMakeFiles/table4_diagnosis.dir/table4_diagnosis.cc.o"
  "CMakeFiles/table4_diagnosis.dir/table4_diagnosis.cc.o.d"
  "table4_diagnosis"
  "table4_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
