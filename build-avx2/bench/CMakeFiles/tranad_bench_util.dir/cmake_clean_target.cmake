file(REMOVE_RECURSE
  "libtranad_bench_util.a"
)
