#include "core/online_detector.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace tranad {
namespace {

class OnlineTranADTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto config = SmapConfig(0.2);
    config.anomaly_magnitude = 1.6;
    dataset_ = GenerateSynthetic(config);
    TranADConfig model_config;
    model_config.window = 8;
    model_config.d_ff = 16;
    TrainOptions train;
    train.max_epochs = 3;
    detector_ = std::make_unique<TranADDetector>(model_config, train);
    detector_->Fit(dataset_.train);
  }

  Tensor Observation(const TimeSeries& series, int64_t t) {
    Tensor row({series.dims()});
    for (int64_t d = 0; d < series.dims(); ++d) {
      row[d] = series.values.At({t, d});
    }
    return row;
  }

  Dataset dataset_;
  std::unique_ptr<TranADDetector> detector_;
};

TEST_F(OnlineTranADTest, ObserveBeforeCalibrateDies) {
  OnlineTranAD online(detector_.get());
  EXPECT_DEATH(online.Observe(Tensor({dataset_.dims()})), "CHECK");
}

TEST_F(OnlineTranADTest, StreamingMatchesBatchScores) {
  OnlineTranAD online(detector_.get(), PotParamsForDataset("SMAP"));
  online.Calibrate(dataset_.train);
  const Tensor batch_scores = detector_->Score(dataset_.test);

  // Streamed per-observation scores must match the batched Alg. 2 scores
  // once the ring buffer is warm (first K steps mix calibration context
  // with test data, which the batched pass cannot see).
  const int64_t k = detector_->model()->config().window;
  const int64_t check = std::min<int64_t>(60, dataset_.test.length());
  for (int64_t t = 0; t < check; ++t) {
    const OnlineVerdict v = online.Observe(Observation(dataset_.test, t));
    if (t < k) continue;
    const double batch =
        DetectionScores(batch_scores)[static_cast<size_t>(t)];
    EXPECT_NEAR(v.score, batch, 1e-4) << "t=" << t;
  }
}

TEST_F(OnlineTranADTest, DetectsStreamedAnomalies) {
  OnlineTranAD online(detector_.get(), PotParamsForDataset("SMAP"));
  online.Calibrate(dataset_.train);
  std::vector<uint8_t> pred;
  for (int64_t t = 0; t < dataset_.test.length(); ++t) {
    pred.push_back(
        online.Observe(Observation(dataset_.test, t)).anomalous ? 1 : 0);
  }
  EXPECT_EQ(online.observed(), dataset_.test.length());
  const auto adjusted = PointAdjust(pred, dataset_.test.labels);
  const auto c = CountConfusion(adjusted, dataset_.test.labels);
  EXPECT_GT(RecallOf(c), 0.3);
  EXPECT_GT(PrecisionOf(c), 0.3);
}

TEST_F(OnlineTranADTest, VerdictFieldsPopulated) {
  OnlineTranAD online(detector_.get());
  online.Calibrate(dataset_.train);
  const OnlineVerdict v = online.Observe(Observation(dataset_.test, 0));
  EXPECT_EQ(v.dim_scores.numel(), dataset_.dims());
  EXPECT_GE(v.score, 0.0);
  EXPECT_GT(v.threshold, 0.0);
}

TEST_F(OnlineTranADTest, ThresholdAdaptsOverStream) {
  OnlineTranAD online(detector_.get());
  online.Calibrate(dataset_.train);
  const double before = online.threshold();
  for (int64_t t = 0; t < std::min<int64_t>(300, dataset_.test.length());
       ++t) {
    online.Observe(Observation(dataset_.test, t));
  }
  // The SPOT tail model refits as peaks arrive; threshold should move.
  EXPECT_NE(online.threshold(), before);
}

}  // namespace
}  // namespace tranad
