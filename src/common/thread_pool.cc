#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.h"

namespace tranad {
namespace {

// InlineComputeGuard nesting depth on this thread.
thread_local int64_t t_inline_depth = 0;
// True while this thread executes a ParallelFor chunk (workers and the
// caller alike); nested ParallelFor calls then run inline.
thread_local bool t_in_chunk = false;

// Leaked on purpose: ParallelFor may be reached from static destructors
// (e.g. cached datasets freeing tensors), which must never touch an
// already-destroyed mutex.
std::mutex& HookMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::function<void()>& WorkerInitHook() {
  static std::function<void()>* hook = new std::function<void()>;
  return *hook;
}

// One ParallelFor invocation. Chunks are claimed dynamically via `next`;
// which thread runs a chunk never affects the values produced (the
// ParallelFor contract), only the schedule. Shared-ptr ownership keeps the
// block alive for stragglers that grab the region right as it finishes:
// they only ever touch `next`/`nchunks` (and observe exhaustion), never the
// caller-owned RangeFn.
struct Region {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;
  int64_t nchunks = 0;
  const RangeFn* fn = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void RunChunks(Region* r) {
  t_in_chunk = true;
  for (;;) {
    const int64_t c = r->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= r->nchunks) break;
    const int64_t lo = r->begin + c * r->chunk;
    const int64_t hi = std::min(r->end, lo + r->chunk);
    (*r->fn)(lo, hi);
    if (r->done.fetch_add(1, std::memory_order_acq_rel) + 1 == r->nchunks) {
      // Empty critical section orders the notify after a concurrent
      // Execute()'s predicate check.
      { std::lock_guard<std::mutex> lock(r->mu); }
      r->cv.notify_all();
    }
  }
  t_in_chunk = false;
}

class Pool {
 public:
  explicit Pool(int64_t workers) {
    threads_.reserve(static_cast<size_t>(workers));
    for (int64_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerMain(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  int64_t lanes() const { return static_cast<int64_t>(threads_.size()) + 1; }

  // Runs the region's chunks on the pool workers plus the calling thread,
  // returning once every chunk has completed. If another region already
  // owns the pool (two non-pool threads issuing ParallelFor at once), the
  // caller runs all of its own chunks inline — bounded thread use, no
  // deadlock, identical results.
  void Execute(std::shared_ptr<Region> r) {
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (region_ == nullptr) {
        region_ = r;
        ++seq_;
        published = true;
      }
    }
    if (published) cv_.notify_all();
    RunChunks(r.get());
    if (!published) return;  // caller claimed every chunk itself
    {
      std::unique_lock<std::mutex> lock(r->mu);
      r->cv.wait(lock, [&] {
        return r->done.load(std::memory_order_acquire) == r->nchunks;
      });
    }
    std::lock_guard<std::mutex> lock(mu_);
    region_ = nullptr;
  }

 private:
  void WorkerMain() {
    {
      std::function<void()> hook;
      {
        std::lock_guard<std::mutex> lock(HookMu());
        hook = WorkerInitHook();
      }
      if (hook) hook();
    }
    uint64_t last_seq = 0;
    for (;;) {
      std::shared_ptr<Region> r;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return shutdown_ || (region_ != nullptr && seq_ != last_seq);
        });
        if (shutdown_) return;
        r = region_;
        last_seq = seq_;
      }
      RunChunks(r.get());
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Region> region_;
  uint64_t seq_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

std::mutex& PoolMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

Pool*& PoolSlot() {
  static Pool* pool = nullptr;
  return pool;
}

Pool* GetPool() {
  std::lock_guard<std::mutex> lock(PoolMu());
  Pool*& slot = PoolSlot();
  if (slot == nullptr) {
    int64_t n = EnvNumThreads();
    if (n <= 0) n = static_cast<int64_t>(std::thread::hardware_concurrency());
    n = std::clamp<int64_t>(n, 1, 256);
    slot = new Pool(n - 1);
  }
  return slot;
}

}  // namespace

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (t_inline_depth > 0 || t_in_chunk) {
    fn(begin, end);
    return;
  }
  Pool* pool = GetPool();
  const int64_t lanes = pool->lanes();
  if (lanes <= 1 || n <= grain) {
    fn(begin, end);
    return;
  }
  // A few chunks per lane gives dynamic balance without dropping below the
  // grain. Chunk boundaries influence only the schedule, never the values
  // (see the header contract), so the lane count staying out of the
  // per-index arithmetic keeps results bit-identical across thread counts.
  const int64_t target = lanes * 4;
  const int64_t chunk = std::max(grain, (n + target - 1) / target);
  const int64_t nchunks = (n + chunk - 1) / chunk;
  if (nchunks <= 1) {
    fn(begin, end);
    return;
  }
  auto region = std::make_shared<Region>();
  region->begin = begin;
  region->end = end;
  region->chunk = chunk;
  region->nchunks = nchunks;
  region->fn = &fn;
  pool->Execute(std::move(region));
}

int64_t NumComputeThreads() { return GetPool()->lanes(); }

void SetNumComputeThreads(int64_t n) {
  n = std::clamp<int64_t>(n, 1, 256);
  Pool* old = nullptr;
  Pool* fresh = new Pool(n - 1);
  {
    std::lock_guard<std::mutex> lock(PoolMu());
    old = PoolSlot();
    PoolSlot() = fresh;
  }
  delete old;  // joins the previous workers
}

InlineComputeGuard::InlineComputeGuard() { ++t_inline_depth; }

InlineComputeGuard::~InlineComputeGuard() { --t_inline_depth; }

bool ParallelForRunsInline() { return t_inline_depth > 0 || t_in_chunk; }

void SetWorkerThreadInit(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(HookMu());
  WorkerInitHook() = std::move(fn);
}

}  // namespace tranad
