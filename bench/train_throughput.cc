// End-to-end training throughput of the parallel compute backend: TranAD
// epochs/second across compute-thread counts, plus microbenchmarks of the
// parallelized kernels (matmul, softmax, elementwise) at serve-realistic
// (B=32) and train-realistic (B=128) shapes. Results land both on stdout
// and machine-readably in bench_out/BENCH_train_throughput.json.
//
// The thread sweep reconfigures the shared pool in-process via
// SetNumComputeThreads, so the 1-thread and N-thread rows run identical
// code on identical data — by the ParallelFor determinism contract they
// also produce bit-identical floats, which the determinism test suite
// asserts; this binary measures only the time.
#include <sstream>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/tranad_trainer.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/arena.h"
#include "tensor/tensor_ops.h"

namespace tranad::bench {
namespace {

struct Row {
  std::string name;
  int64_t threads = 0;
  double seconds = 0.0;
  double per_second = 0.0;  // epochs/s or ops/s
};

std::vector<int64_t> ThreadSweep() {
  // Always measure 1 and 4 (the acceptance comparison); include 2 for the
  // scaling curve and the machine's own default when it differs.
  std::vector<int64_t> sweep{1, 2, 4};
  const int64_t dflt = NumComputeThreads();
  bool seen = false;
  for (int64_t t : sweep) seen = seen || t == dflt;
  if (!seen) sweep.push_back(dflt);
  return sweep;
}

double TrainEpochsPerSecond(const Tensor& windows, int64_t epochs) {
  TranADConfig config;
  config.dims = windows.size(2);
  config.window = windows.size(1);
  config.seed = 11;
  TranADModel model(config);
  TrainOptions opts;
  opts.max_epochs = epochs;
  opts.batch_size = 128;
  opts.early_stop_patience = epochs + 1;
  Stopwatch timer;
  const TrainStats stats = TrainTranAD(&model, windows, opts);
  const double sec = timer.ElapsedSeconds();
  return static_cast<double>(stats.epochs_run) / sec;
}

// Times `iters` repetitions of `fn` and returns ops/second.
template <typename F>
double OpsPerSecond(int64_t iters, F fn) {
  fn();  // warm the arena and the pool
  Stopwatch timer;
  for (int64_t i = 0; i < iters; ++i) fn();
  return static_cast<double>(iters) / timer.ElapsedSeconds();
}

int Main() {
  std::vector<Row> rows;
  const int64_t epochs = DefaultEpochs();

  // --- end-to-end training ---
  Dataset ds = GenerateSynthetic(SmdConfig(DefaultScale()));
  MinMaxNormalizer norm;
  norm.Fit(ds.train.values);
  const Tensor windows = MakeWindows(norm.Transform(ds.train.values), 10);
  std::printf("training set: %lld windows of [%lld x %lld]\n",
              static_cast<long long>(windows.size(0)),
              static_cast<long long>(windows.size(1)),
              static_cast<long long>(windows.size(2)));

  const auto sweep = ThreadSweep();
  for (int64_t threads : sweep) {
    SetNumComputeThreads(threads);
    Row r;
    r.name = "train_epoch";
    r.threads = threads;
    Stopwatch timer;
    r.per_second = TrainEpochsPerSecond(windows, epochs);
    r.seconds = timer.ElapsedSeconds();
    rows.push_back(r);
  }

  // --- kernel micro-ops at serve (B=32) and train (B=128) shapes ---
  Rng rng(21);
  const struct {
    std::string tag;
    int64_t batch;
  } regimes[] = {{"serve_b32", 32}, {"train_b128", 128}};
  for (const auto& regime : regimes) {
    const int64_t b = regime.batch;
    const Tensor mm_a = Tensor::Randn({b, 10, 64}, &rng);
    const Tensor mm_b = Tensor::Randn({64, 64}, &rng);
    const Tensor sm_x = Tensor::Randn({b, 8, 10, 10}, &rng);
    const Tensor ew_a = Tensor::Randn({b, 10, 64}, &rng);
    const Tensor ew_b = Tensor::Randn({64}, &rng);
    for (int64_t threads : sweep) {
      SetNumComputeThreads(threads);
      auto add_row = [&](const std::string& op, double ops) {
        Row r;
        r.name = regime.tag + "/" + op;
        r.threads = threads;
        r.per_second = ops;
        r.seconds = 1.0 / ops;
        rows.push_back(r);
      };
      add_row("matmul", OpsPerSecond(200, [&] {
                volatile float sink = MatMul(mm_a, mm_b)[0];
                (void)sink;
              }));
      add_row("softmax", OpsPerSecond(500, [&] {
                volatile float sink = SoftmaxLastDim(sm_x)[0];
                (void)sink;
              }));
      add_row("elementwise", OpsPerSecond(500, [&] {
                volatile float sink = Gelu(Add(ew_a, ew_b))[0];
                (void)sink;
              }));
    }
  }

  // --- report ---
  std::vector<std::vector<std::string>> table;
  for (const auto& r : rows) {
    table.push_back({r.name, std::to_string(r.threads), Fmt2(r.per_second)});
  }
  PrintTable("Training/kernel throughput (per second)",
             {"case", "threads", "per_sec"}, table);

  double base_epoch = 0.0, best_epoch = 0.0;
  for (const auto& r : rows) {
    if (r.name != "train_epoch") continue;
    if (r.threads == 1) base_epoch = r.per_second;
    best_epoch = std::max(best_epoch, r.per_second);
  }
  if (base_epoch > 0.0) {
    std::printf("\nepoch-throughput speedup vs 1 thread: %.2fx "
                "(hardware threads available: %lld)\n",
                best_epoch / base_epoch,
                static_cast<long long>(NumComputeThreads()));
  }

  std::ostringstream json;
  json << "{\"bench\": \"train_throughput\", \"epochs\": " << epochs << ", "
       << ComputeBackendJsonFields() << ", \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i > 0) json << ", ";
    json << "{\"case\": \"" << r.name << "\", \"threads\": " << r.threads
         << ", \"per_second\": " << r.per_second
         << ", \"seconds\": " << r.seconds << "}";
  }
  json << "]}";
  std::printf("JSON: %s\n",
              WriteBenchJson("train_throughput", json.str()).c_str());
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
