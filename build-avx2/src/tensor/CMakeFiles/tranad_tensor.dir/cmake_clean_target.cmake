file(REMOVE_RECURSE
  "libtranad_tensor.a"
)
