# Empty compiler generated dependencies file for serve_loadgen.
# This may be replaced when dependencies are built.
