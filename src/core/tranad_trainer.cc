#include "core/tranad_trainer.h"

#include <cmath>
#include <fstream>
#include <string>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/preprocess.h"
#include "io/checkpoint.h"
#include "nn/optimizer.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

// Gradient stash keyed by parameter identity, used to route the two
// adversarial losses to their parameter groups before a single optimizer
// step.
class GradStash {
 public:
  void Add(const std::vector<Variable>& params) {
    for (const auto& p : params) {
      const Tensor& g = p.grad();
      auto it = acc_.find(p.id());
      if (it == acc_.end()) {
        acc_.emplace(p.id(), g);
      } else {
        Tensor& t = it->second;
        for (int64_t i = 0; i < t.numel(); ++i) t[i] += g[i];
      }
    }
  }

  // Installs the stashed gradients onto the parameters (replacing whatever
  // backward left there).
  void Install(const std::vector<Variable>& all_params) {
    for (auto p : all_params) {
      p.ZeroGrad();
      auto it = acc_.find(p.id());
      if (it != acc_.end()) p.AccumulateGrad(it->second);
    }
  }

 private:
  std::unordered_map<const void*, Tensor> acc_;
};

// NaN-poisoning guard: an optimizer step is applied only when both the
// batch loss and the (pre-clip) gradient norm are finite. One poisoned
// window (sensor Inf, corrupt row) then costs a single skipped batch
// instead of irrecoverably NaN-ing every weight — and the last checkpoint
// stays valid. Returns whether the step was applied.
bool GuardedStep(nn::AdamW* opt, double loss, float grad_clip) {
  if (!std::isfinite(loss)) return false;
  const float norm = opt->ClipGradNorm(grad_clip);
  if (!std::isfinite(norm)) return false;
  opt->Step();
  return true;
}

double BatchAdversarialStep(TranADModel* model, const Tensor& batch, float w,
                            nn::AdamW* opt, const TrainOptions& options,
                            const std::vector<Variable>& enc_params,
                            const std::vector<Variable>& dec1_params,
                            const std::vector<Variable>& dec2_params,
                            const std::vector<Variable>& all_params,
                            bool* stepped) {
  Variable window(batch);
  const bool adversarial = model->config().use_adversarial;
  const int64_t b = batch.size(0);
  const int64_t k = batch.size(1);
  const int64_t m = batch.size(2);
  // Reconstruction target: the window's final element (the current
  // timestamp), as in the reference implementation.
  const Tensor target = SliceAxis(batch, 1, k - 1, 1).Reshape({b, m});

  auto [o1, o2] = model->ForwardPhase1(window);
  Variable rec1 = ag::MseLoss(o1, target);
  Variable rec2 = ag::MseLoss(o2, target);

  if (!adversarial) {
    // Ablation "w/o adversarial training": single-phase reconstruction.
    Variable loss =
        ag::MulScalar(ag::Add(rec1, rec2), 0.5f);
    model->ZeroGrad();
    loss.Backward();
    const double value = loss.value().Item();
    *stepped = GuardedStep(opt, value, options.grad_clip);
    return value;
  }

  // Phase 2: self-conditioned focus score F = (O1 - x_t)^2 (Alg. 1 line 6).
  Variable focus = ag::SquaredDiff(o1, Variable(target));
  Variable o2hat = model->ForwardPhase2(window, focus);
  Variable adv = ag::MseLossVar(o2hat, Variable(target));

  // Eq. (10): L1 = w |O1-W| + (1-w) |Ô2-W| ; L2 = w |O2-W| - (1-w) |Ô2-W|.
  Variable l1 = ag::Add(ag::MulScalar(rec1, w), ag::MulScalar(adv, 1.0f - w));
  Variable l2 = ag::Sub(ag::MulScalar(rec2, w), ag::MulScalar(adv, 1.0f - w));

  GradStash stash;
  // L1 trains the encoder and decoder 1 (the "generator" side).
  model->ZeroGrad();
  l1.Backward();
  stash.Add(enc_params);
  stash.Add(dec1_params);
  // Clear every gradient the first pass left on the shared tape before
  // backpropagating the second loss.
  l1.ClearTapeGradients();
  l2.ClearTapeGradients();
  l2.Backward();
  stash.Add(enc_params);
  stash.Add(dec2_params);
  stash.Install(all_params);

  const double value = 0.5 * (l1.value().Item() + std::fabs(l2.value().Item()));
  *stepped = GuardedStep(opt, value, options.grad_clip);
  return value;
}

double EvalLoss(TranADModel* model, const Tensor& windows,
                int64_t batch_size) {
  model->SetTraining(false);
  const int64_t n = windows.size(0);
  double total = 0.0;
  int64_t batches = 0;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t len = std::min(batch_size, n - start);
    Tensor batch = SliceAxis(windows, 0, start, len);
    const Tensor target =
        SliceAxis(batch, 1, batch.size(1) - 1, 1)
            .Reshape({len, batch.size(2)});
    Variable window(batch);
    auto [o1, o2] = model->ForwardPhase1(window);
    Variable focus = ag::SquaredDiff(o1, Variable(target));
    Variable o2hat = model->ForwardPhase2(window, focus);
    total += 0.5 * (ag::MseLoss(o1, target).value().Item() +
                    ag::MseLoss(o2hat, target).value().Item());
    ++batches;
  }
  model->SetTraining(true);
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

// First-order MAML (Eq. 11-12): one inner SGD step on batch A, outer
// gradient evaluated at the adapted weights on batch B, applied to the
// original weights with the meta step size.
void MamlStep(TranADModel* model, const Tensor& windows, int64_t batch_size,
              float inner_lr, float meta_lr) {
  const int64_t n = windows.size(0);
  if (n < 2) return;
  Rng* rng = model->rng();
  auto sample_batch = [&]() {
    const int64_t len = std::min(batch_size, n);
    const int64_t start = static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(n - len + 1)));
    return SliceAxis(windows, 0, start, len);
  };
  auto plain_loss = [&](const Tensor& batch) {
    const Tensor target =
        SliceAxis(batch, 1, batch.size(1) - 1, 1)
            .Reshape({batch.size(0), batch.size(2)});
    Variable window(batch);
    auto [o1, o2] = model->ForwardPhase1(window);
    return ag::MulScalar(
        ag::Add(ag::MseLoss(o1, target), ag::MseLoss(o2, target)), 0.5f);
  };

  const std::vector<Tensor> snapshot = model->SnapshotParameters();
  auto params = model->Parameters();

  // Inner step: theta' = theta - alpha * grad L_A(theta).
  model->ZeroGrad();
  Variable inner_loss = plain_loss(sample_batch());
  if (!std::isfinite(inner_loss.value().Item())) {
    // Poisoned batch: abandon the meta step, weights untouched.
    model->ZeroGrad();
    return;
  }
  inner_loss.Backward();
  for (auto& p : params) {
    Tensor* w = p.mutable_value();
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < w->numel(); ++i) (*w)[i] -= inner_lr * g[i];
  }

  // Outer gradient at theta' on an independent batch.
  model->ZeroGrad();
  Variable outer_loss = plain_loss(sample_batch());
  if (!std::isfinite(outer_loss.value().Item())) {
    model->RestoreParameters(snapshot);
    model->ZeroGrad();
    return;
  }
  outer_loss.Backward();
  std::vector<Tensor> outer_grads;
  outer_grads.reserve(params.size());
  for (auto& p : params) outer_grads.push_back(p.grad());

  // theta <- theta - beta * grad L_B(theta') (first-order approximation).
  model->RestoreParameters(snapshot);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor* w = params[i].mutable_value();
    const Tensor& g = outer_grads[i];
    for (int64_t j = 0; j < w->numel(); ++j) (*w)[j] -= meta_lr * g[j];
  }
  model->ZeroGrad();
}

}  // namespace

TrainStats TrainTranAD(TranADModel* model, const Tensor& windows,
                       const TrainOptions& options) {
  TRANAD_CHECK(model != nullptr);
  TRANAD_CHECK_EQ(windows.ndim(), 3);
  TRANAD_CHECK_EQ(windows.size(2), model->config().dims);
  TrainStats stats;

  // Shuffle windows (deterministically from the model seed) before the
  // 80:20 split: windows are self-contained training samples, and a
  // chronological tail split would confound early stopping with data
  // drift.
  Tensor shuffled(windows.shape());
  {
    Rng perm_rng(model->config().seed ^ 0x5157AULL);
    const auto perm = perm_rng.Permutation(static_cast<size_t>(windows.size(0)));
    const int64_t stride = windows.size(1) * windows.size(2);
    for (int64_t i = 0; i < windows.size(0); ++i) {
      const int64_t src = static_cast<int64_t>(perm[static_cast<size_t>(i)]);
      std::copy(windows.data() + src * stride,
                windows.data() + (src + 1) * stride,
                shuffled.data() + i * stride);
    }
  }
  auto [train_windows, val_windows] =
      SplitTrainVal(shuffled, options.val_fraction);

  const auto enc_params = model->EncoderParameters();
  const auto dec1_params = model->Decoder1Parameters();
  const auto dec2_params = model->Decoder2Parameters();
  const auto all_params = model->Parameters();

  nn::AdamW opt(all_params, options.lr);
  nn::StepLr scheduler(&opt, options.lr_step_epochs, options.lr_gamma);

  model->SetTraining(true);
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_snapshot;
  int64_t bad_epochs = 0;
  double total_seconds = 0.0;
  bool warned_non_finite = false;

  const bool checkpointing =
      !options.checkpoint_path.empty() && options.checkpoint_every > 0;

  // Serializes the complete resumable state — model weights, dropout RNG,
  // Adam moments + step count, scheduler epoch, effective lr, early-stop
  // bookkeeping and loss curves — so a restored run continues bitwise
  // identically to an uninterrupted one. Written atomically (tmp + fsync +
  // rename), so a SIGKILL mid-save leaves the previous checkpoint intact.
  auto save_checkpoint = [&](int64_t epoch, bool finished) {
    io::CheckpointWriter writer;
    model->SaveTo(&writer, "model/");
    const Rng::State rng_state = model->rng()->ExportState();
    std::vector<int64_t> rng_words(4);
    for (int i = 0; i < 4; ++i) {
      rng_words[i] = static_cast<int64_t>(rng_state.s[i]);
    }
    writer.PutI64Array("rng/s", rng_words);
    writer.PutInt("rng/has_cached", rng_state.has_cached_normal ? 1 : 0);
    writer.PutScalar("rng/cached", rng_state.cached_normal);
    writer.PutInt("opt/step", opt.step_count());
    writer.PutScalar("opt/lr", static_cast<double>(opt.lr()));
    for (size_t i = 0; i < opt.moments1().size(); ++i) {
      writer.PutTensor("opt/m/" + std::to_string(i), opt.moments1()[i]);
      writer.PutTensor("opt/v/" + std::to_string(i), opt.moments2()[i]);
    }
    writer.PutInt("sched/epoch", scheduler.epoch());
    writer.PutInt("trainer/epoch", epoch);
    writer.PutInt("trainer/finished", finished ? 1 : 0);
    writer.PutScalar("trainer/best_val", best_val);
    writer.PutInt("trainer/bad_epochs", bad_epochs);
    writer.PutScalar("trainer/total_seconds", total_seconds);
    writer.PutF64Array("trainer/train_losses", stats.train_losses);
    writer.PutF64Array("trainer/val_losses", stats.val_losses);
    writer.PutInt("trainer/skipped_non_finite", stats.skipped_non_finite);
    writer.PutInt("best/present", best_snapshot.empty() ? 0 : 1);
    for (size_t i = 0; i < best_snapshot.size(); ++i) {
      writer.PutTensor("best/" + std::to_string(i), best_snapshot[i]);
    }
    Status st;
    if (auto fp = TRANAD_FAILPOINT("core.trainer.checkpoint_save");
        fp.is_error()) {
      st = fp.ToStatus("core.trainer.checkpoint_save");
    } else {
      st = writer.WriteAtomic(options.checkpoint_path);
    }
    // A failed save is survivable by design: training continues and the
    // previous on-disk checkpoint (if any) stays valid for resume.
    if (!st.ok()) {
      TRANAD_LOG(Warning) << "checkpoint write failed: " << st.ToString();
    }
  };

  // Reads everything into temporaries first, then commits, so a checkpoint
  // for a different architecture or a damaged file leaves training state
  // untouched and we fall back to a fresh run.
  bool restored_finished = false;
  auto restore_checkpoint =
      [&](const io::CheckpointReader& reader) -> Result<int64_t> {
    TRANAD_ASSIGN_OR_RETURN(std::vector<int64_t> rng_words,
                            reader.GetI64Array("rng/s"));
    if (rng_words.size() != 4) {
      return Status::InvalidArgument("rng/s must hold 4 words");
    }
    TRANAD_ASSIGN_OR_RETURN(int64_t rng_has_cached,
                            reader.GetInt("rng/has_cached"));
    TRANAD_ASSIGN_OR_RETURN(double rng_cached, reader.GetScalar("rng/cached"));
    TRANAD_ASSIGN_OR_RETURN(int64_t opt_step, reader.GetInt("opt/step"));
    TRANAD_ASSIGN_OR_RETURN(double opt_lr, reader.GetScalar("opt/lr"));
    std::vector<Tensor> m, v;
    for (size_t i = 0; i < all_params.size(); ++i) {
      TRANAD_ASSIGN_OR_RETURN(Tensor mi,
                              reader.GetTensor("opt/m/" + std::to_string(i)));
      TRANAD_ASSIGN_OR_RETURN(Tensor vi,
                              reader.GetTensor("opt/v/" + std::to_string(i)));
      m.push_back(std::move(mi));
      v.push_back(std::move(vi));
    }
    TRANAD_ASSIGN_OR_RETURN(int64_t sched_epoch, reader.GetInt("sched/epoch"));
    TRANAD_ASSIGN_OR_RETURN(int64_t epoch, reader.GetInt("trainer/epoch"));
    TRANAD_ASSIGN_OR_RETURN(int64_t finished, reader.GetInt("trainer/finished"));
    TRANAD_ASSIGN_OR_RETURN(double saved_best_val,
                            reader.GetScalar("trainer/best_val"));
    TRANAD_ASSIGN_OR_RETURN(int64_t saved_bad_epochs,
                            reader.GetInt("trainer/bad_epochs"));
    TRANAD_ASSIGN_OR_RETURN(double saved_seconds,
                            reader.GetScalar("trainer/total_seconds"));
    TRANAD_ASSIGN_OR_RETURN(std::vector<double> train_losses,
                            reader.GetF64Array("trainer/train_losses"));
    TRANAD_ASSIGN_OR_RETURN(std::vector<double> val_losses,
                            reader.GetF64Array("trainer/val_losses"));
    TRANAD_ASSIGN_OR_RETURN(int64_t skipped,
                            reader.GetInt("trainer/skipped_non_finite"));
    TRANAD_ASSIGN_OR_RETURN(int64_t best_present,
                            reader.GetInt("best/present"));
    std::vector<Tensor> saved_best;
    if (best_present != 0) {
      for (size_t i = 0; i < all_params.size(); ++i) {
        TRANAD_ASSIGN_OR_RETURN(Tensor bi,
                                reader.GetTensor("best/" + std::to_string(i)));
        saved_best.push_back(std::move(bi));
      }
    }
    // Model weights last: LoadFrom itself validates before committing.
    TRANAD_RETURN_IF_ERROR(model->LoadFrom(reader, "model/"));
    TRANAD_RETURN_IF_ERROR(
        opt.RestoreState(opt_step, std::move(m), std::move(v)));
    opt.set_lr(static_cast<float>(opt_lr));
    scheduler.set_epoch(sched_epoch);
    Rng::State rng_state{};
    for (int i = 0; i < 4; ++i) {
      rng_state.s[i] = static_cast<uint64_t>(rng_words[i]);
    }
    rng_state.has_cached_normal = rng_has_cached != 0;
    rng_state.cached_normal = rng_cached;
    model->rng()->RestoreState(rng_state);
    best_val = saved_best_val;
    bad_epochs = saved_bad_epochs;
    total_seconds = saved_seconds;
    stats.train_losses = std::move(train_losses);
    stats.val_losses = std::move(val_losses);
    stats.skipped_non_finite = skipped;
    stats.epochs_run = epoch;
    best_snapshot = std::move(saved_best);
    restored_finished = finished != 0;
    return epoch;
  };

  int64_t start_epoch = 1;
  if (checkpointing && options.resume) {
    const bool exists = std::ifstream(options.checkpoint_path).good();
    if (exists) {
      auto opened = io::CheckpointReader::Open(options.checkpoint_path);
      Result<int64_t> restored =
          opened.ok() ? restore_checkpoint(*opened) : opened.status();
      if (restored.ok()) {
        // Replay the stop decision the loop would make at this point:
        // budget exhausted or early stop tripped means the loop is skipped
        // and only the final best-snapshot restore runs, so resuming a
        // completed run is a no-op that reproduces its exact final state.
        // Otherwise (e.g. a finished run handed a larger max_epochs, or a
        // periodic checkpoint from an interrupted run) training continues
        // from the stored end-of-loop weights.
        const bool done = *restored >= options.max_epochs ||
                          bad_epochs > options.early_stop_patience;
        start_epoch = done ? options.max_epochs + 1 : *restored + 1;
        if (options.verbose) {
          TRANAD_LOG(Info) << "resumed from " << options.checkpoint_path
                           << " at epoch " << *restored
                           << (restored_finished ? " (finished run)" : "");
        }
      } else {
        TRANAD_LOG(Warning) << "cannot resume from " << options.checkpoint_path
                            << " (" << restored.status().ToString()
                            << "); training from scratch";
      }
    }
  }

  const int64_t n = train_windows.size(0);
  for (int64_t epoch = start_epoch; epoch <= options.max_epochs; ++epoch) {
    Stopwatch epoch_timer;
    // Evolving weight eps^-n (Eq. 10): reconstruction-dominated early,
    // adversarial-dominated late.
    const float w = std::pow(options.epsilon, -static_cast<float>(epoch));
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t start = 0; start < n; start += options.batch_size) {
      // Drain the arena back down to its cap as each batch's tape dies:
      // steady-state batches then recycle an identical working set instead
      // of growing the cache monotonically.
      ArenaDrainScope drain;
      const int64_t len = std::min(options.batch_size, n - start);
      Tensor batch = SliceAxis(train_windows, 0, start, len);
      bool stepped = false;
      const double batch_loss =
          BatchAdversarialStep(model, batch, w, &opt, options, enc_params,
                               dec1_params, dec2_params, all_params, &stepped);
      if (stepped) {
        epoch_loss += batch_loss;
        ++batches;
      } else {
        ++stats.skipped_non_finite;
        if (!warned_non_finite) {
          TRANAD_LOG(Warning)
              << "non-finite batch loss or gradient norm at epoch " << epoch
              << "; skipping optimizer step (further skips logged silently)";
          warned_non_finite = true;
        }
      }
    }
    if (model->config().use_maml) {
      MamlStep(model, train_windows, options.batch_size, options.lr,
               options.meta_lr);
    }
    scheduler.Step();
    total_seconds += epoch_timer.ElapsedSeconds();

    stats.train_losses.push_back(
        batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0);
    const double val_loss =
        val_windows.size(0) > 0
            ? EvalLoss(model, val_windows, options.batch_size)
            : stats.train_losses.back();
    stats.val_losses.push_back(val_loss);
    stats.epochs_run = epoch;
    if (options.verbose) {
      TRANAD_LOG(Info) << "epoch " << epoch << " train "
                       << stats.train_losses.back() << " val " << val_loss;
    }

    // Early stopping: "we stop the training process once the validation
    // accuracy starts to decrease" (§4), with a small patience.
    bool stop = false;
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_snapshot = model->SnapshotParameters();
      bad_epochs = 0;
    } else {
      ++bad_epochs;
      if (bad_epochs > options.early_stop_patience) stop = true;
    }
    if (checkpointing && epoch % options.checkpoint_every == 0) {
      save_checkpoint(epoch, /*finished=*/false);
    }
    if (stop) break;
  }
  // Final checkpoint, written *before* the best-snapshot restore so the
  // model entries hold the raw end-of-loop weights: resuming with a larger
  // max_epochs then continues training bitwise as if never interrupted,
  // while resuming a completed run replays only the restore below.
  if (checkpointing) save_checkpoint(stats.epochs_run, /*finished=*/true);
  if (!best_snapshot.empty()) model->RestoreParameters(best_snapshot);
  model->SetTraining(false);
  stats.seconds_per_epoch =
      stats.epochs_run > 0
          ? total_seconds / static_cast<double>(stats.epochs_run)
          : 0.0;
  return stats;
}

}  // namespace tranad
