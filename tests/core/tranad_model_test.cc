#include "core/tranad_model.h"

#include <gtest/gtest.h>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

TranADConfig SmallConfig(int64_t dims = 3) {
  TranADConfig c;
  c.dims = dims;
  c.window = 6;
  c.d_ff = 16;
  c.dropout = 0.0f;
  c.seed = 5;
  return c;
}

TEST(TranADModelTest, Phase1OutputShapes) {
  // Decoders reconstruct the current timestamp: outputs are [B, m].
  TranADModel model(SmallConfig());
  model.SetTraining(false);
  Rng rng(1);
  Variable w(Tensor::Rand({4, 6, 3}, &rng));
  auto [o1, o2] = model.ForwardPhase1(w);
  EXPECT_EQ(o1.shape(), Shape({4, 3}));
  EXPECT_EQ(o2.shape(), Shape({4, 3}));
}

TEST(TranADModelTest, OutputsInUnitInterval) {
  // Sigmoid decoders (Eq. 6) keep reconstructions in (0, 1).
  TranADModel model(SmallConfig());
  model.SetTraining(false);
  Rng rng(2);
  Variable w(Tensor::Randn({2, 6, 3}, &rng, 3.0f));
  auto [o1, o2] = model.ForwardPhase1(w);
  for (int64_t i = 0; i < o1.value().numel(); ++i) {
    EXPECT_GT(o1.value()[i], 0.0f);
    EXPECT_LT(o1.value()[i], 1.0f);
    EXPECT_GT(o2.value()[i], 0.0f);
    EXPECT_LT(o2.value()[i], 1.0f);
  }
}

TEST(TranADModelTest, DecodersDiffer) {
  TranADModel model(SmallConfig());
  model.SetTraining(false);
  Rng rng(3);
  Variable w(Tensor::Rand({2, 6, 3}, &rng));
  auto [o1, o2] = model.ForwardPhase1(w);
  EXPECT_FALSE(o1.value().AllClose(o2.value(), 1e-6f));
}

TEST(TranADModelTest, FocusScoreChangesPhase2) {
  TranADModel model(SmallConfig());
  model.SetTraining(false);
  Rng rng(4);
  Variable w(Tensor::Rand({2, 6, 3}, &rng));
  Variable zero_focus(Tensor::Zeros({2, 3}));
  Variable big_focus(Tensor::Full({2, 3}, 0.5f));
  const Tensor a = model.ForwardPhase2(w, zero_focus).value();
  const Tensor b = model.ForwardPhase2(w, big_focus).value();
  EXPECT_FALSE(a.AllClose(b, 1e-6f));
}

TEST(TranADModelTest, BroadcastFocusRepeats) {
  TranADModel model(SmallConfig());
  Variable focus(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  const Tensor full = model.BroadcastFocus(focus, 6).value();
  EXPECT_EQ(full.shape(), Shape({2, 6, 3}));
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_FLOAT_EQ(full.At({1, t, 2}), 6.0f);
  }
}

TEST(TranADModelTest, SelfConditioningAblationIgnoresFocus) {
  TranADConfig c = SmallConfig();
  c.use_self_conditioning = false;
  TranADModel model(c);
  model.SetTraining(false);
  Rng rng(5);
  Variable w(Tensor::Rand({2, 6, 3}, &rng));
  Variable zero_focus(Tensor::Zeros({2, 3}));
  Variable big_focus(Tensor::Full({2, 3}, 0.5f));
  const Tensor a = model.ForwardPhase2(w, zero_focus).value();
  const Tensor b = model.ForwardPhase2(w, big_focus).value();
  EXPECT_TRUE(a.AllClose(b, 1e-7f));
}

TEST(TranADModelTest, FeedForwardAblationRuns) {
  TranADConfig c = SmallConfig();
  c.use_transformer = false;
  TranADModel model(c);
  model.SetTraining(false);
  Rng rng(6);
  Variable w(Tensor::Rand({2, 6, 3}, &rng));
  auto [o1, o2] = model.ForwardPhase1(w);
  EXPECT_EQ(o1.shape(), Shape({2, 3}));
  // The FF ablation has no attention map.
  EXPECT_EQ(model.LastEncoderAttention().numel(), 1);
}

TEST(TranADModelTest, ParameterGroupsPartition) {
  TranADModel model(SmallConfig());
  const auto all = model.Parameters();
  const auto enc = model.EncoderParameters();
  const auto d1 = model.Decoder1Parameters();
  const auto d2 = model.Decoder2Parameters();
  EXPECT_EQ(all.size(), enc.size() + d1.size() + d2.size());
  EXPECT_FALSE(d1.empty());
  EXPECT_FALSE(d2.empty());
}

TEST(TranADModelTest, HeadsDefaultToDims) {
  // d_model = 2m must be divisible by m heads for any m.
  for (int64_t m : {1, 2, 5, 8}) {
    TranADModel model(SmallConfig(m));
    model.SetTraining(false);
    Rng rng(7);
    Variable w(Tensor::Rand({1, 6, m}, &rng));
    auto [o1, o2] = model.ForwardPhase1(w);
    EXPECT_EQ(o1.shape(), Shape({1, m}));
  }
}

TEST(TranADModelTest, AttentionMapAvailableAfterForward) {
  TranADModel model(SmallConfig());
  model.SetTraining(false);
  Rng rng(8);
  Variable w(Tensor::Rand({2, 6, 3}, &rng));
  model.ForwardPhase1(w);
  const Tensor attn = model.LastEncoderAttention();
  EXPECT_EQ(attn.shape(), Shape({2, 6, 6}));
}

TEST(TranADModelTest, GradientsReachEverything) {
  TranADModel model(SmallConfig());
  Rng rng(9);
  Tensor batch = Tensor::Rand({4, 6, 3}, &rng);
  const Tensor target = SliceAxis(batch, 1, 5, 1).Reshape({4, 3});
  Variable w(batch);
  auto [o1, o2] = model.ForwardPhase1(w);
  Variable focus = ag::Square(ag::Sub(o1, Variable(target)));
  Variable o2hat = model.ForwardPhase2(w, focus);
  Variable loss =
      ag::Add(ag::MseLoss(o1, target), ag::MseLoss(o2hat, target));
  model.ZeroGrad();
  loss.Backward();
  int64_t touched = 0;
  for (const auto& p : model.Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      if (p.grad()[i] != 0.0f) {
        ++touched;
        break;
      }
    }
  }
  // All but decoder2's direct-phase-1 parameters participate; nearly all
  // tensors should be touched.
  EXPECT_GT(touched,
            static_cast<int64_t>(model.Parameters().size() * 2 / 3));
}

TEST(TranADModelTest, BidirectionalVariantSeesFuture) {
  // The future-work extension drops the causal mask: the window encoder's
  // self-attention must attend to future positions (which the causal model
  // provably cannot; see AttentionTest.CausalityProperty).
  TranADConfig c = SmallConfig();
  c.bidirectional = true;
  TranADModel model(c);
  model.SetTraining(false);
  TranADModel causal(SmallConfig());
  causal.SetTraining(false);
  Rng rng(12);
  Variable w(Tensor::Rand({1, 6, 3}, &rng));
  auto [b1, b2] = model.ForwardPhase1(w);
  auto [c1, c2] = causal.ForwardPhase1(w);
  EXPECT_EQ(b1.shape(), c1.shape());
  for (int64_t i = 0; i < b1.value().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(b1.value()[i]));
  }
}

TEST(TranADModelTest, DeterministicInEvalMode) {
  TranADModel model(SmallConfig());
  model.SetTraining(false);
  Rng rng(10);
  Variable w(Tensor::Rand({2, 6, 3}, &rng));
  auto [a1, a2] = model.ForwardPhase1(w);
  auto [b1, b2] = model.ForwardPhase1(w);
  EXPECT_TRUE(a1.value().AllClose(b1.value(), 1e-7f));
  EXPECT_TRUE(a2.value().AllClose(b2.value(), 1e-7f));
}

}  // namespace
}  // namespace tranad
