// Table 5: training time in seconds per epoch for every method on every
// dataset. MERLIN (training-free) reports its discovery time on the test
// data, as in the paper.
#include "bench/bench_util.h"

#include "common/stopwatch.h"

namespace tranad::bench {
namespace {

int Main() {
  const auto methods = PaperMethodNames();
  // Two epochs suffice for a stable per-epoch time.
  const int64_t epochs = 2;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> csv;
  const auto datasets = DatasetNames();

  for (const auto& method : methods) {
    std::vector<std::string> row{method};
    std::vector<double> csv_row;
    for (const auto& dataset_name : datasets) {
      const Dataset& ds = BenchDataset(dataset_name);
      DetectorOptions options;
      options.epochs = epochs;
      auto det = CreateDetector(method, options);
      TRANAD_CHECK(det.ok());
      (*det)->Fit(ds.train);
      double sec = (*det)->seconds_per_epoch();
      if (method == "MERLIN") {
        Stopwatch timer;
        (*det)->Score(ds.test);
        sec = timer.ElapsedSeconds();
      }
      row.push_back(Fmt2(sec));
      csv_row.push_back(sec);
      std::fflush(stdout);
    }
    rows.push_back(std::move(row));
    csv.push_back(std::move(csv_row));
  }

  std::vector<std::string> header{"Method"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  PrintTable("Table 5: training times (seconds per epoch)", header, rows);
  const auto path = WriteBenchCsv("table5_training_time", datasets, csv);
  std::printf("\nCSV: %s\n", path.c_str());

  // Paper headline: TranAD's training-time reduction vs the slowest and
  // the recurrent baselines.
  return 0;
}

}  // namespace
}  // namespace tranad::bench

int main() { return tranad::bench::Main(); }
