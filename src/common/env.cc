#include "common/env.h"

#include <cstdlib>

#include "common/string_util.h"

namespace tranad {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  double out = def;
  if (!ParseDouble(v, &out)) return def;
  return out;
}

int64_t EnvInt(const char* name, int64_t def) {
  return static_cast<int64_t>(EnvDouble(name, static_cast<double>(def)));
}

std::string EnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::string(v);
}

double BenchScale() { return EnvDouble("TRANAD_SCALE", 1.0); }

int64_t BenchEpochs() { return EnvInt("TRANAD_EPOCHS", 0); }

int64_t EnvNumThreads() { return EnvInt("TRANAD_NUM_THREADS", 0); }

int64_t EnvArenaCapBytes() {
  return EnvInt("TRANAD_ARENA_MAX_MB", 256) * (1 << 20);
}

}  // namespace tranad
