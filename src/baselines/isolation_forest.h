#ifndef TRANAD_BASELINES_ISOLATION_FOREST_H_
#define TRANAD_BASELINES_ISOLATION_FOREST_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"

namespace tranad {

/// Classic isolation forest (Liu et al., ICDM'08): an ensemble of random
/// binary trees; anomalies isolate in short paths. §4 notes the method was
/// tested but omitted from the paper's tables for low F1 — it is included
/// here for completeness and as a classical reference point.
class IsolationForest {
 public:
  IsolationForest(int64_t num_trees, int64_t sample_size, uint64_t seed);

  /// Fits on rows of [N, d] features.
  void Fit(const Tensor& features);

  /// Anomaly score in (0, 1]: 2^(-E[h(x)] / c(n)); higher = more anomalous.
  double ScoreRow(const float* row) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  struct Node {
    int32_t feature = -1;   // -1 = leaf
    float threshold = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    int32_t size = 0;       // leaf: subsample size reaching it
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int32_t BuildNode(Tree* tree, std::vector<int64_t>* rows, int64_t begin,
                    int64_t end, int64_t depth, int64_t max_depth,
                    const Tensor& features);
  double PathLength(const Tree& tree, const float* row) const;

  int64_t num_trees_;
  int64_t sample_size_;
  int64_t dims_ = 0;
  Rng rng_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;
};

/// Per-dimension anomaly detector built on isolation forests: one forest per
/// dimension over [value, first difference, local mean deviation] features.
class IsolationForestDetector : public AnomalyDetector {
 public:
  explicit IsolationForestDetector(int64_t num_trees = 50,
                                   int64_t sample_size = 256,
                                   uint64_t seed = 20);

  std::string name() const override { return "IsolationForest"; }
  void Fit(const TimeSeries& train) override;
  Tensor Score(const TimeSeries& series) override;
  double seconds_per_epoch() const override { return fit_seconds_; }

 private:
  Tensor MakeFeatures(const TimeSeries& series, int64_t dim) const;

  int64_t num_trees_;
  int64_t sample_size_;
  uint64_t seed_;
  int64_t dims_ = 0;
  std::vector<IsolationForest> forests_;
  double fit_seconds_ = 0.0;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_ISOLATION_FOREST_H_
