// Property tests: every autograd op's analytic gradient must agree with
// central finite differences on random inputs — the certification the
// whole training stack rests on.
#include "tensor/grad_check.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

using OpFn = std::function<Variable(const std::vector<Variable>&)>;

struct GradCase {
  std::string name;
  OpFn fn;
  std::vector<Shape> input_shapes;
  // Inputs drawn uniform in [lo, hi] (kept away from non-smooth points).
  float lo = -2.0f;
  float hi = 2.0f;
};

class GradCheckSuite : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckSuite, MatchesFiniteDifferences) {
  const GradCase& c = GetParam();
  Rng rng(0xC0FFEE ^ std::hash<std::string>{}(c.name));
  std::vector<Tensor> inputs;
  for (const auto& shape : c.input_shapes) {
    inputs.push_back(Tensor::Rand(shape, &rng, c.lo, c.hi));
  }
  const auto result = CheckGradients(c.fn, std::move(inputs));
  EXPECT_TRUE(result.ok) << c.name << ": " << result.detail
                         << " (max err " << result.max_abs_err << ")";
}

Variable Sum0(const Variable& v) { return ag::SumAll(v); }

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  auto unary = [&](const std::string& name, auto op, float lo = -2.0f,
                   float hi = 2.0f) {
    cases.push_back({name,
                     [op](const std::vector<Variable>& in) {
                       return ag::MeanAll(ag::Square(op(in[0])));
                     },
                     {{3, 4}},
                     lo,
                     hi});
  };
  unary("sigmoid", [](const Variable& v) { return ag::Sigmoid(v); });
  unary("tanh", [](const Variable& v) { return ag::Tanh(v); });
  unary("gelu", [](const Variable& v) { return ag::Gelu(v); });
  unary("exp", [](const Variable& v) { return ag::Exp(v); }, -1.5f, 1.5f);
  unary("log", [](const Variable& v) { return ag::Log(v); }, 0.5f, 3.0f);
  unary("sqrt", [](const Variable& v) { return ag::Sqrt(v); }, 0.5f, 3.0f);
  unary("square", [](const Variable& v) { return ag::Square(v); });
  unary("relu_positive", [](const Variable& v) { return ag::Relu(v); },
        0.3f, 2.0f);
  unary("relu_negative", [](const Variable& v) { return ag::Relu(v); },
        -2.0f, -0.3f);
  unary("leaky_relu",
        [](const Variable& v) { return ag::LeakyRelu(v, 0.1f); }, 0.3f,
        2.0f);
  unary("abs_positive", [](const Variable& v) { return ag::Abs(v); }, 0.3f,
        2.0f);
  unary("neg", [](const Variable& v) { return ag::Neg(v); });
  unary("add_scalar",
        [](const Variable& v) { return ag::AddScalar(v, 1.5f); });
  unary("mul_scalar",
        [](const Variable& v) { return ag::MulScalar(v, -2.5f); });
  unary("softmax",
        [](const Variable& v) { return ag::SoftmaxLastDim(v); });
  unary("layer_norm",
        [](const Variable& v) { return ag::LayerNormLastDim(v, 1e-3f); });

  cases.push_back({"add_same",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Add(in[0], in[1])));
                   },
                   {{3, 4}, {3, 4}}});
  cases.push_back({"add_broadcast",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Add(in[0], in[1])));
                   },
                   {{3, 4}, {4}}});
  cases.push_back({"sub_broadcast_col",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Sub(in[0], in[1])));
                   },
                   {{3, 4}, {3, 1}}});
  cases.push_back({"mul_same",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Mul(in[0], in[1])));
                   },
                   {{2, 5}, {2, 5}}});
  cases.push_back({"mul_broadcast",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Mul(in[0], in[1])));
                   },
                   {{2, 5}, {5}}});
  cases.push_back({"div",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Div(in[0], in[1])));
                   },
                   {{3, 3}, {3, 3}},
                   0.5f,
                   2.0f});
  cases.push_back({"matmul",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::MatMul(in[0], in[1])));
                   },
                   {{3, 4}, {4, 2}}});
  cases.push_back({"matmul_batched",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::MatMul(in[0], in[1])));
                   },
                   {{2, 3, 4}, {2, 4, 2}}});
  cases.push_back({"matmul_broadcast_rhs",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::MatMul(in[0], in[1])));
                   },
                   {{2, 3, 4}, {4, 2}}});
  cases.push_back({"transpose",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(
                         ag::Square(ag::TransposeLast2(in[0])));
                   },
                   {{3, 5}}});
  cases.push_back({"swap_axes12",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::SwapAxes12(in[0])));
                   },
                   {{2, 3, 2, 2}}});
  cases.push_back({"reshape",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(
                         ag::Square(ag::Reshape(in[0], {6, 2})));
                   },
                   {{3, 4}}});
  cases.push_back({"concat",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(
                         ag::Square(ag::Concat({in[0], in[1]}, 1)));
                   },
                   {{2, 3}, {2, 2}}});
  cases.push_back({"slice",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(
                         ag::Square(ag::SliceAxis(in[0], 1, 1, 2)));
                   },
                   {{3, 4}}});
  cases.push_back({"sum_axis",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Sum(in[0], 0, false)));
                   },
                   {{3, 4}}});
  cases.push_back({"mean_axis_keepdims",
                   [](const std::vector<Variable>& in) {
                     return ag::MeanAll(ag::Square(ag::Mean(in[0], 1, true)));
                   },
                   {{3, 4}}});
  cases.push_back({"mse_var",
                   [](const std::vector<Variable>& in) {
                     return ag::MseLossVar(in[0], in[1]);
                   },
                   {{3, 3}, {3, 3}}});
  cases.push_back(
      {"attention_shaped",
       [](const std::vector<Variable>& in) {
         // softmax(Q K^T) V — the exact op pattern of Eq. (2).
         Variable logits =
             ag::MulScalar(ag::MatMul(in[0], ag::TransposeLast2(in[1])),
                           0.5f);
         Variable w = ag::SoftmaxLastDim(logits);
         return ag::MeanAll(ag::Square(ag::MatMul(w, in[2])));
       },
       {{3, 4}, {3, 4}, {3, 2}}});
  cases.push_back(
      {"residual_norm_block",
       [](const std::vector<Variable>& in) {
         // LayerNorm(x + f(x)) — the Eq. (4) block shape.
         Variable f = ag::Tanh(ag::MatMul(in[0], in[1]));
         return ag::MeanAll(
             ag::Square(ag::LayerNormLastDim(ag::Add(in[0], f), 1e-3f)));
       },
       {{3, 3}, {3, 3}}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckSuite, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      std::string name = info.param.name;
      for (auto& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(GradCheckHarnessTest, DetectsWrongGradient) {
  // A deliberately broken op: forward = x^2 but backward pretends dy/dx=1.
  auto broken = [](const std::vector<Variable>& in) {
    Variable x = in[0];
    Variable pa = x;
    Tensor y = Square(x.value());
    Variable bad = Variable::MakeNode(
        std::move(y), {x},
        [pa](const Tensor& g) mutable { pa.AccumulateGrad(g); });
    return ag::SumAll(bad);
  };
  Rng rng(3);
  const auto result = CheckGradients(broken, {Tensor::Rand({3}, &rng, 1.0f, 2.0f)});
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace tranad
