#ifndef TRANAD_NN_CONV_H_
#define TRANAD_NN_CONV_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace tranad::nn {

/// 1-d convolution over the time axis of a [B, T, C_in] sequence, realised
/// as unfold + matmul so it inherits autograd from the primitive ops. With
/// `same_padding` the output keeps length T (zero padding); otherwise the
/// output length is T - kernel + 1. Used by the MSCRED and CAE-M baselines.
class Conv1d : public Module {
 public:
  Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         bool same_padding, Rng* rng);

  Variable Forward(const Variable& x) const;

  int64_t kernel() const { return kernel_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  bool same_padding_;
  std::unique_ptr<Linear> proj_;  // [C_in * kernel] -> C_out
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_CONV_H_
