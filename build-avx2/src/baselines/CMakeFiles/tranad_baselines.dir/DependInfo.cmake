
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cae_m.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/cae_m.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/cae_m.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/dagmm.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/dagmm.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/dagmm.cc.o.d"
  "/root/repo/src/baselines/gdn.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/gdn.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/gdn.cc.o.d"
  "/root/repo/src/baselines/gmm.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/gmm.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/gmm.cc.o.d"
  "/root/repo/src/baselines/isolation_forest.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/isolation_forest.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/isolation_forest.cc.o.d"
  "/root/repo/src/baselines/lstm_ndt.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/lstm_ndt.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/lstm_ndt.cc.o.d"
  "/root/repo/src/baselines/mad_gan.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/mad_gan.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/mad_gan.cc.o.d"
  "/root/repo/src/baselines/merlin.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/merlin.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/merlin.cc.o.d"
  "/root/repo/src/baselines/mscred.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/mscred.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/mscred.cc.o.d"
  "/root/repo/src/baselines/mtad_gat.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/mtad_gat.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/mtad_gat.cc.o.d"
  "/root/repo/src/baselines/omni_anomaly.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/omni_anomaly.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/omni_anomaly.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/usad.cc" "src/baselines/CMakeFiles/tranad_baselines.dir/usad.cc.o" "gcc" "src/baselines/CMakeFiles/tranad_baselines.dir/usad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-avx2/src/core/CMakeFiles/tranad_core.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/nn/CMakeFiles/tranad_nn.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/data/CMakeFiles/tranad_data.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/eval/CMakeFiles/tranad_eval.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/tensor/CMakeFiles/tranad_tensor.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/common/CMakeFiles/tranad_common.dir/DependInfo.cmake"
  "/root/repo/build-avx2/src/io/CMakeFiles/tranad_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
