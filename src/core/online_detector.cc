#include "core/online_detector.h"

#include "common/check.h"
#include "core/pipeline.h"
#include "tensor/tensor_ops.h"

namespace tranad {

OnlineTranAD::OnlineTranAD(TranADDetector* detector, PotParams pot)
    : detector_(detector), spot_(pot) {
  TRANAD_CHECK(detector != nullptr);
}

void OnlineTranAD::Calibrate(const TimeSeries& calibration) {
  TRANAD_CHECK_GT(calibration.length(), 0);
  const Tensor scores = detector_->Score(calibration);
  const Status st = spot_.Initialize(DetectionScores(scores));
  TRANAD_CHECK_MSG(st.ok(), "SPOT calibration failed");

  // Seed the ring buffer with the calibration tail (normalized once) so the
  // first streamed observation has full context.
  const int64_t k = detector_->model()->config().window;
  const int64_t m = calibration.dims();
  ring_.Reset(k, m);
  const int64_t start = std::max<int64_t>(0, calibration.length() - k + 1);
  const int64_t len = calibration.length() - start;
  if (len > 0) {
    ring_.Seed(detector_->NormalizeForScoring(
        SliceAxis(calibration.values, 0, start, len)));
  }
}

OnlineVerdict OnlineTranAD::Observe(const Tensor& observation) {
  TRANAD_CHECK(spot_.initialized());
  const int64_t m = detector_->model()->config().dims;
  TRANAD_CHECK_EQ(observation.numel(), m);

  // Normalize the new observation once, push it into the ring, and score
  // the assembled [1, K, m] window through the inference-only path.
  ring_.Push(detector_->NormalizeForScoring(observation.Reshape({1, m}))
                 .Reshape({m}));
  const Tensor scores = detector_->ScoreWindows(ring_.Window());  // [1, m]

  OnlineVerdict verdict;
  verdict.dim_scores = Tensor({m});
  double total = 0.0;
  for (int64_t d = 0; d < m; ++d) {
    const float s = scores[d];
    verdict.dim_scores[d] = s;
    total += s;
  }
  verdict.score = total / static_cast<double>(m);
  verdict.anomalous = spot_.Observe(verdict.score);
  verdict.threshold = spot_.threshold();
  ++observed_;
  return verdict;
}

}  // namespace tranad
