# Empty compiler generated dependencies file for table3_limited.
# This may be replaced when dependencies are built.
