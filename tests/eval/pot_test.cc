#include "eval/pot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace tranad {
namespace {

std::vector<double> ExponentialSample(double rate, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = -std::log(1.0 - rng.Uniform()) / rate;
  return out;
}

TEST(QuantileTest, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_NEAR(Quantile(v, 0.3), 3.0, 1e-12);
}

TEST(QuantileTest, UnsortedInput) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
}

TEST(GpdFitTest, ExponentialTailGivesGammaNearZero) {
  // Exponential excesses are GPD with gamma = 0, sigma = 1/rate.
  const auto excesses = ExponentialSample(2.0, 5000, 42);
  const GpdFit fit = FitGpdGrimshaw(excesses);
  EXPECT_NEAR(fit.gamma, 0.0, 0.12);
  EXPECT_NEAR(fit.sigma, 0.5, 0.1);
}

TEST(GpdFitTest, HeavyTailGivesPositiveGamma) {
  // Pareto-like excesses: X = sigma/gamma ((1-U)^-gamma - 1).
  Rng rng(43);
  const double gamma = 0.5;
  const double sigma = 1.0;
  std::vector<double> excesses(5000);
  for (auto& v : excesses) {
    v = sigma / gamma * (std::pow(1.0 - rng.Uniform(), -gamma) - 1.0);
  }
  const GpdFit fit = FitGpdGrimshaw(excesses);
  EXPECT_GT(fit.gamma, 0.2);
}

TEST(PotThresholdTest, CalibratedExceedanceProbability) {
  // For exponential scores the POT threshold at risk q should be exceeded
  // by about q of an independent sample.
  const auto calib = ExponentialSample(1.0, 20000, 7);
  PotParams params;
  params.risk = 1e-3;
  params.init_quantile = 0.98;
  const double z = PotThreshold(calib, params);
  const auto fresh = ExponentialSample(1.0, 50000, 8);
  int64_t above = 0;
  for (double s : fresh) above += s > z;
  const double rate = static_cast<double>(above) / fresh.size();
  EXPECT_NEAR(rate, 1e-3, 8e-4);
}

TEST(PotThresholdTest, ThresholdAboveInitQuantile) {
  const auto calib = ExponentialSample(1.0, 5000, 9);
  PotParams params;
  const double z = PotThreshold(calib, params);
  EXPECT_GT(z, Quantile(calib, params.init_quantile));
}

TEST(PotThresholdTest, FewExcessesFallsBackToQuantile) {
  std::vector<double> tiny{1, 2, 3, 4, 5};
  PotParams params;
  params.min_excesses = 10;
  const double z = PotThreshold(tiny, params);
  EXPECT_NEAR(z, Quantile(tiny, 1.0 - params.risk), 1e-9);
}

TEST(StreamingPotTest, FlagsInjectedExtremes) {
  StreamingPot spot({.risk = 1e-4, .init_quantile = 0.95});
  spot.Initialize(ExponentialSample(1.0, 5000, 10));
  ASSERT_TRUE(spot.initialized());
  Rng rng(11);
  int64_t false_alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    false_alarms += spot.Observe(-std::log(1.0 - rng.Uniform()));
  }
  EXPECT_LT(false_alarms, 10);
  EXPECT_TRUE(spot.Observe(spot.threshold() + 100.0));
}

TEST(StreamingPotTest, AdaptsPeaksOverTime) {
  StreamingPot spot({.risk = 1e-3, .init_quantile = 0.9});
  spot.Initialize(ExponentialSample(1.0, 1000, 12));
  const int64_t peaks_before = spot.num_peaks();
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    spot.Observe(-std::log(1.0 - rng.Uniform()));
  }
  EXPECT_GT(spot.num_peaks(), peaks_before);
}

TEST(StreamingPotTest, ObserveBeforeInitDies) {
  StreamingPot spot;
  EXPECT_DEATH(spot.Observe(1.0), "CHECK");
}

TEST(StreamingPotTest, InitializeRejectsEmptyCalibration) {
  StreamingPot spot;
  const Status st = spot.Initialize({});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(spot.initialized());
}

TEST(StreamingPotTest, InitializeRejectsNonFiniteCalibration) {
  StreamingPot spot;
  EXPECT_EQ(spot.Initialize({1.0, 2.0, std::nan(""), 3.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(spot.Initialize(
                    {1.0, std::numeric_limits<double>::infinity()})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(spot.initialized());
}

TEST(StreamingPotTest, AllEqualCalibrationYieldsFiniteThreshold) {
  // A constant score stream has a zero-length tail; the threshold must
  // still come back finite and strictly above the constant so normal
  // traffic is not all flagged.
  StreamingPot spot({.risk = 1e-3, .init_quantile = 0.98});
  ASSERT_TRUE(spot.Initialize(std::vector<double>(1000, 3.0)).ok());
  EXPECT_TRUE(std::isfinite(spot.threshold()));
  EXPECT_GT(spot.threshold(), 3.0);
  EXPECT_FALSE(spot.Observe(3.0));
  EXPECT_TRUE(spot.Observe(1e6));
}

TEST(StreamingPotTest, ExtremeInitQuantilesStayFinite) {
  const auto calib = ExponentialSample(1.0, 2000, 21);
  for (const double q : {0.0, 1.0}) {
    StreamingPot spot({.risk = 1e-4, .init_quantile = q});
    ASSERT_TRUE(spot.Initialize(calib).ok()) << "q=" << q;
    EXPECT_TRUE(std::isfinite(spot.threshold())) << "q=" << q;
    EXPECT_FALSE(spot.Observe(0.0)) << "q=" << q;
  }
}

TEST(StreamingPotTest, TinyCalibrationSetStillInitializes) {
  StreamingPot spot;
  ASSERT_TRUE(spot.Initialize({1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(std::isfinite(spot.threshold()));
  EXPECT_GT(spot.threshold(), 2.0);  // above the median at least
}

TEST(StreamingPotTest, NonFiniteScoreFlaggedWithoutPollutingTail) {
  StreamingPot spot({.risk = 1e-3, .init_quantile = 0.9});
  ASSERT_TRUE(spot.Initialize(ExponentialSample(1.0, 2000, 22)).ok());
  const double threshold_before = spot.threshold();
  const int64_t peaks_before = spot.num_peaks();

  EXPECT_TRUE(spot.Observe(std::nan("")));
  EXPECT_TRUE(spot.Observe(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(spot.Observe(-std::numeric_limits<double>::infinity()));

  // The poisoned observations left no trace in the tail model.
  EXPECT_EQ(spot.num_peaks(), peaks_before);
  EXPECT_EQ(spot.threshold(), threshold_before);
  EXPECT_TRUE(std::isfinite(spot.threshold()));
}

TEST(StreamingPotTest, ExportRestoreThresholdsIdentically) {
  StreamingPot live({.risk = 1e-3, .init_quantile = 0.9});
  ASSERT_TRUE(live.Initialize(ExponentialSample(1.0, 1000, 23)).ok());
  Rng rng(24);
  for (int i = 0; i < 500; ++i) {
    live.Observe(-std::log(1.0 - rng.Uniform()));
  }

  StreamingPot restored(live.params());
  ASSERT_TRUE(restored.RestoreState(live.ExportState()).ok());
  ASSERT_TRUE(restored.initialized());
  EXPECT_EQ(restored.threshold(), live.threshold());

  // Both must now evolve identically on the same future stream.
  Rng future(25);
  for (int i = 0; i < 500; ++i) {
    const double s = -std::log(1.0 - future.Uniform());
    ASSERT_EQ(live.Observe(s), restored.Observe(s)) << "step " << i;
    ASSERT_EQ(live.threshold(), restored.threshold()) << "step " << i;
  }
}

// The shard-failover handoff exports a pot at an arbitrary point in its
// refit cadence. Export at the exact steps where Observe just absorbed a
// peak and re-fit the GPD — the moments the mutable state (peaks, n, z_q)
// all changed at once — and verify the restored pot is indistinguishable
// from the live one from then on.
TEST(StreamingPotTest, ExportAtRefitBoundariesRestoresBitExact) {
  StreamingPot live({.risk = 1e-3, .init_quantile = 0.9});
  ASSERT_TRUE(live.Initialize(ExponentialSample(1.0, 1000, 31)).ok());

  // Walk the stream to the third refit boundary: the step where Observe
  // just absorbed a peak and re-fit (peaks, n, and z_q all changed).
  Rng rng(32);
  int refits = 0;
  int steps = 0;
  while (refits < 3) {
    ASSERT_LT(steps, 2000) << "the stream never exercised three refits";
    const int64_t peaks_before = live.num_peaks();
    live.Observe(-std::log(1.0 - rng.Uniform()));
    ++steps;
    if (live.num_peaks() > peaks_before) ++refits;
  }

  StreamingPot restored(live.params());
  ASSERT_TRUE(restored.RestoreState(live.ExportState()).ok());
  EXPECT_EQ(restored.threshold(), live.threshold());
  EXPECT_EQ(restored.num_peaks(), live.num_peaks());

  // Live and restored co-evolve on the same continuation: every flag and
  // every threshold stays bit-identical.
  for (int j = 0; j < 500; ++j) {
    const double s = -std::log(1.0 - rng.Uniform());
    ASSERT_EQ(live.Observe(s), restored.Observe(s)) << "step " << j;
    ASSERT_EQ(live.threshold(), restored.threshold()) << "step " << j;
  }
}

TEST(StreamingPotTest, RestoreRejectsCorruptState) {
  StreamingPot spot;
  StreamingPotState state;
  state.initialized = true;
  state.t = std::nan("");
  EXPECT_FALSE(spot.RestoreState(state).ok());
  state.t = 1.0;
  state.n = -5;
  EXPECT_FALSE(spot.RestoreState(state).ok());
  state.n = 10;
  state.peaks = {0.5, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(spot.RestoreState(state).ok());
  EXPECT_FALSE(spot.initialized());
}

TEST(NdtThresholdTest, AboveMeanOfErrors) {
  Rng rng(14);
  std::vector<double> errors(2000);
  double mean = 0.0;
  for (auto& e : errors) {
    e = std::fabs(rng.Normal(0.0, 1.0));
    mean += e;
  }
  mean /= errors.size();
  // Plant a few extreme errors.
  errors[100] = 20.0;
  errors[500] = 25.0;
  const double eps = NdtThreshold(errors);
  EXPECT_GT(eps, mean);
  EXPECT_LT(eps, 25.0);
}

TEST(NdtThresholdTest, SeparatesPlantedAnomalies) {
  std::vector<double> errors(500, 0.1);
  for (int i = 0; i < 5; ++i) errors[static_cast<size_t>(i * 100 + 7)] = 10.0;
  const double eps = NdtThreshold(errors);
  EXPECT_GT(eps, 0.1);
  EXPECT_LT(eps, 10.0);
}

TEST(AnnualMaximumTest, ThresholdAboveTypicalMaxima) {
  const auto calib = ExponentialSample(1.0, 10000, 15);
  const double z = AnnualMaximumThreshold(calib, 0.01, 100);
  // 1% return level should exceed the median block maximum.
  std::vector<double> maxima;
  for (size_t i = 0; i < calib.size(); i += 100) {
    double m = calib[i];
    for (size_t j = i; j < i + 100; ++j) m = std::max(m, calib[j]);
    maxima.push_back(m);
  }
  EXPECT_GT(z, Quantile(maxima, 0.5));
}

TEST(AnnualMaximumTest, HigherRiskLowersThreshold) {
  const auto calib = ExponentialSample(1.0, 5000, 16);
  EXPECT_GT(AnnualMaximumThreshold(calib, 0.001, 50),
            AnnualMaximumThreshold(calib, 0.1, 50));
}

TEST(PotVsAmTest, PotTracksTailMoreClosely) {
  // The paper reports POT outperforming AM; a necessary condition is that
  // POT's threshold for small risks stays below AM's overly conservative
  // one on light-tailed data while both exceed the bulk.
  const auto calib = ExponentialSample(1.0, 20000, 17);
  PotParams params;
  params.risk = 1e-3;
  const double pot = PotThreshold(calib, params);
  const double am = AnnualMaximumThreshold(calib, 1e-3, 200);
  const double bulk = Quantile(calib, 0.99);
  EXPECT_GT(pot, bulk);
  EXPECT_GT(am, bulk);
}

}  // namespace
}  // namespace tranad
