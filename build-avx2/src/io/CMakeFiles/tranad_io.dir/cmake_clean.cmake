file(REMOVE_RECURSE
  "CMakeFiles/tranad_io.dir/checkpoint.cc.o"
  "CMakeFiles/tranad_io.dir/checkpoint.cc.o.d"
  "libtranad_io.a"
  "libtranad_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
