#ifndef TRANAD_BASELINES_MERLIN_H_
#define TRANAD_BASELINES_MERLIN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"

namespace tranad {

/// A time-series discord: the subsequence most distant from its nearest
/// non-overlapping neighbour.
struct Discord {
  int64_t position = -1;
  int64_t length = 0;
  /// z-normalized Euclidean nearest-neighbour distance.
  double distance = 0.0;
};

/// Discord discovery over one univariate series with z-normalized Euclidean
/// distances (rolling mean/std via prefix sums, distances via dot products).
class DiscordFinder {
 public:
  explicit DiscordFinder(std::vector<double> series);

  /// MERLIN's DRAG-based top-1 discord of the given length: candidate
  /// selection with pruning radius r, exact refinement, and the adaptive
  /// halving of r on failure (Nakamura et al., ICDM'20).
  Discord FindDiscord(int64_t length) const;

  /// Brute-force O(n^2) discord (the "original"-style comparator used by
  /// the Table 7 bench).
  Discord FindDiscordNaive(int64_t length) const;

  /// MERLIN proper: discords for every length in [min_len, max_len] with
  /// the given stride, warm-starting each radius from the previous length's
  /// discord distance.
  std::vector<Discord> FindDiscords(int64_t min_len, int64_t max_len,
                                    int64_t step = 1) const;

  /// z-normalized distance between subsequences at i and j (length L).
  double Distance(int64_t i, int64_t j, int64_t length) const;

  int64_t length() const { return static_cast<int64_t>(series_.size()); }

 private:
  std::vector<double> series_;
  std::vector<double> prefix_;     // prefix sums
  std::vector<double> prefix_sq_;  // prefix sums of squares

  void MeanStd(int64_t i, int64_t length, double* mean, double* std) const;
};

/// MERLIN as an AnomalyDetector: parameter-free, training-free discord
/// discovery run per dimension on the scored series; timestamps covered by
/// discords receive their (normalized) discord distance, and a sampled
/// approximate nearest-neighbour profile provides graded scores elsewhere.
/// `naive` switches to the brute-force comparator (Table 7).
class MerlinDetector : public AnomalyDetector {
 public:
  explicit MerlinDetector(int64_t min_len = 8, int64_t max_len = 32,
                          int64_t step = 8, bool naive = false);

  std::string name() const override { return naive_ ? "MERLIN(naive)" : "MERLIN"; }
  void Fit(const TimeSeries& train) override;
  Tensor Score(const TimeSeries& series) override;
  /// MERLIN needs no training; the paper reports discovery time instead.
  double seconds_per_epoch() const override { return discovery_seconds_; }

 private:
  int64_t min_len_;
  int64_t max_len_;
  int64_t step_;
  bool naive_;
  double discovery_seconds_ = 0.0;
};

}  // namespace tranad

#endif  // TRANAD_BASELINES_MERLIN_H_
