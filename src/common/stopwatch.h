#ifndef TRANAD_COMMON_STOPWATCH_H_
#define TRANAD_COMMON_STOPWATCH_H_

#include <chrono>

namespace tranad {

/// Wall-clock stopwatch used to time training epochs and benchmark phases.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tranad

#endif  // TRANAD_COMMON_STOPWATCH_H_
