file(REMOVE_RECURSE
  "libtranad_baselines.a"
)
