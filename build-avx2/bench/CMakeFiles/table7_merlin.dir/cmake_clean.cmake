file(REMOVE_RECURSE
  "CMakeFiles/table7_merlin.dir/table7_merlin.cc.o"
  "CMakeFiles/table7_merlin.dir/table7_merlin.cc.o.d"
  "table7_merlin"
  "table7_merlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_merlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
