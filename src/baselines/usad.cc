#include "baselines/usad.h"

#include <unordered_map>

#include "tensor/autograd_ops.h"

namespace tranad {

UsadDetector::UsadDetector(int64_t window, int64_t epochs, int64_t latent,
                           uint64_t seed)
    : WindowedDetector("USAD", window, epochs, 128),
      latent_(latent),
      seed_(seed) {}

void UsadDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  flat_dim_ = window_ * dims;
  const int64_t hidden = std::max<int64_t>(latent_ * 2, flat_dim_ / 2);
  enc1_ = std::make_unique<nn::Linear>(flat_dim_, hidden, &rng);
  enc2_ = std::make_unique<nn::Linear>(hidden, latent_, &rng);
  dec1a_ = std::make_unique<nn::Linear>(latent_, hidden, &rng);
  dec1b_ = std::make_unique<nn::Linear>(hidden, flat_dim_, &rng);
  dec2a_ = std::make_unique<nn::Linear>(latent_, hidden, &rng);
  dec2b_ = std::make_unique<nn::Linear>(hidden, flat_dim_, &rng);

  auto gather = [](std::initializer_list<nn::Module*> mods) {
    std::vector<Variable> out;
    for (auto* m : mods) {
      auto p = m->Parameters();
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  };
  params_ae1_ = gather({enc1_.get(), enc2_.get(), dec1a_.get(), dec1b_.get()});
  params_ae2_ = gather({enc1_.get(), enc2_.get(), dec2a_.get(), dec2b_.get()});
  all_params_ =
      gather({enc1_.get(), enc2_.get(), dec1a_.get(), dec1b_.get(),
              dec2a_.get(), dec2b_.get()});
  opt_ = std::make_unique<nn::AdamW>(all_params_, 0.005f);
}

Variable UsadDetector::Encode(const Variable& flat) const {
  return ag::Relu(enc2_->Forward(ag::Relu(enc1_->Forward(flat))));
}
Variable UsadDetector::Decode1(const Variable& z) const {
  return ag::Sigmoid(dec1b_->Forward(ag::Relu(dec1a_->Forward(z))));
}
Variable UsadDetector::Decode2(const Variable& z) const {
  return ag::Sigmoid(dec2b_->Forward(ag::Relu(dec2a_->Forward(z))));
}

double UsadDetector::TrainBatch(const Tensor& batch, double progress) {
  const int64_t b = batch.size(0);
  const Tensor flat_t = batch.Reshape({b, flat_dim_});
  Variable flat(flat_t);

  // Decaying reconstruction weight w = 1/n with n the (1-based) epoch.
  const float n = 1.0f + static_cast<float>(progress * epochs_);
  const float w = 1.0f / n;

  Variable w1 = Decode1(Encode(flat));
  Variable w2 = Decode2(Encode(flat));
  Variable w3 = Decode2(Encode(w1));  // AE2(AE1(W))

  Variable rec1 = ag::MseLoss(w1, flat_t);
  Variable rec2 = ag::MseLoss(w2, flat_t);
  Variable adv = ag::MseLossVar(w3, Variable(flat_t));

  Variable l1 = ag::Add(ag::MulScalar(rec1, w), ag::MulScalar(adv, 1.0f - w));
  Variable l2 = ag::Sub(ag::MulScalar(rec2, w), ag::MulScalar(adv, 1.0f - w));

  // Route the two losses to their AE parameter groups (as in TranAD's
  // trainer): backward L1 for AE1, clear the tape, backward L2 for AE2.
  std::unordered_map<const void*, Tensor> stash;
  auto add_stash = [&](const std::vector<Variable>& params) {
    for (const auto& p : params) {
      auto it = stash.find(p.id());
      if (it == stash.end()) {
        stash.emplace(p.id(), p.grad());
      } else {
        Tensor& t = it->second;
        const Tensor& g = p.grad();
        for (int64_t i = 0; i < t.numel(); ++i) t[i] += g[i];
      }
    }
  };
  for (auto p : all_params_) p.ZeroGrad();
  l1.Backward();
  add_stash(params_ae1_);
  l1.ClearTapeGradients();
  l2.ClearTapeGradients();
  l2.Backward();
  add_stash(params_ae2_);
  for (auto p : all_params_) {
    p.ZeroGrad();
    auto it = stash.find(p.id());
    if (it != stash.end()) p.AccumulateGrad(it->second);
  }
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return 0.5 * (l1.value().Item() + l2.value().Item());
}

Tensor UsadDetector::ScoreBatch(const Tensor& batch) {
  const int64_t b = batch.size(0);
  const Tensor flat_t = batch.Reshape({b, flat_dim_});
  Variable flat(flat_t);
  Variable w1 = Decode1(Encode(flat));
  Variable w3 = Decode2(Encode(w1));
  // alpha = beta = 0.5, per-dimension error at the window's last timestamp.
  constexpr float kAlpha = 0.5f;
  Tensor out({b, dims_});
  const float* p1 = w1.value().data();
  const float* p3 = w3.value().data();
  const float* pt = flat_t.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t d = 0; d < dims_; ++d) {
      const int64_t idx = i * flat_dim_ + (window_ - 1) * dims_ + d;
      const float e1 = p1[idx] - pt[idx];
      const float e3 = p3[idx] - pt[idx];
      out.At({i, d}) = kAlpha * e1 * e1 + (1.0f - kAlpha) * e3 * e3;
    }
  }
  return out;
}

}  // namespace tranad
