#include "core/tranad_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace tranad {
namespace {

Tensor TrainingWindows(double scale = 0.1, int64_t k = 6) {
  Dataset ds = GenerateSynthetic(SmdConfig(scale));
  MinMaxNormalizer norm;
  norm.Fit(ds.train.values);
  return MakeWindows(norm.Transform(ds.train.values), k);
}

TranADConfig SmallConfig() {
  TranADConfig c;
  c.dims = 8;
  c.window = 6;
  c.d_ff = 16;
  c.seed = 3;
  return c;
}

TrainOptions FastOptions() {
  TrainOptions o;
  o.max_epochs = 4;
  o.batch_size = 64;
  o.early_stop_patience = 10;  // no early stop in short tests
  return o;
}

TEST(TrainerTest, LossDecreases) {
  const Tensor windows = TrainingWindows();
  TranADModel model(SmallConfig());
  const TrainStats stats = TrainTranAD(&model, windows, FastOptions());
  ASSERT_GE(stats.train_losses.size(), 2u);
  EXPECT_LT(stats.train_losses.back(), stats.train_losses.front());
}

TEST(TrainerTest, StatsBookkeeping) {
  const Tensor windows = TrainingWindows();
  TranADModel model(SmallConfig());
  TrainOptions opts = FastOptions();
  const TrainStats stats = TrainTranAD(&model, windows, opts);
  EXPECT_EQ(stats.epochs_run, opts.max_epochs);
  EXPECT_EQ(stats.train_losses.size(),
            static_cast<size_t>(stats.epochs_run));
  EXPECT_EQ(stats.val_losses.size(), stats.train_losses.size());
  EXPECT_GT(stats.seconds_per_epoch, 0.0);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
  const Tensor windows = TrainingWindows(0.05);
  TranADModel model(SmallConfig());
  TrainOptions opts = FastOptions();
  opts.max_epochs = 50;
  opts.early_stop_patience = 1;
  const TrainStats stats = TrainTranAD(&model, windows, opts);
  EXPECT_LT(stats.epochs_run, 50);
}

TEST(TrainerTest, ModelLeftInEvalMode) {
  const Tensor windows = TrainingWindows(0.05);
  TranADModel model(SmallConfig());
  TrainTranAD(&model, windows, FastOptions());
  EXPECT_FALSE(model.training());
}

TEST(TrainerTest, ReconstructionImproves) {
  // After training, phase-1 reconstruction of training windows must beat
  // the untrained model's by a clear margin.
  const Tensor windows = TrainingWindows();
  const Tensor probe = SliceAxis(windows, 0, 0, 32);

  const Tensor target =
      SliceAxis(probe, 1, probe.size(1) - 1, 1)
          .Reshape({probe.size(0), probe.size(2)});
  auto recon_error = [&](TranADModel* m) {
    m->SetTraining(false);
    auto [o1, o2] = m->ForwardPhase1(Variable(probe));
    double err = 0.0;
    for (int64_t i = 0; i < target.numel(); ++i) {
      const double d = o1.value()[i] - target[i];
      err += d * d;
    }
    return err / target.numel();
  };

  TranADModel model(SmallConfig());
  const double before = recon_error(&model);
  model.SetTraining(true);
  TrainTranAD(&model, windows, FastOptions());
  const double after = recon_error(&model);
  EXPECT_LT(after, before * 0.7);
}

TEST(TrainerTest, AblationsAllTrain) {
  const Tensor windows = TrainingWindows(0.05);
  for (int variant = 0; variant < 4; ++variant) {
    TranADConfig c = SmallConfig();
    c.use_transformer = variant != 0;
    c.use_self_conditioning = variant != 1;
    c.use_adversarial = variant != 2;
    c.use_maml = variant != 3;
    TranADModel model(c);
    TrainOptions opts = FastOptions();
    opts.max_epochs = 2;
    const TrainStats stats = TrainTranAD(&model, windows, opts);
    EXPECT_EQ(stats.epochs_run, 2) << "variant " << variant;
    EXPECT_TRUE(std::isfinite(stats.train_losses.back()));
  }
}

TEST(TrainerTest, DeterministicGivenSeed) {
  const Tensor windows = TrainingWindows(0.05);
  auto train_once = [&]() {
    TranADModel model(SmallConfig());
    TrainOptions opts = FastOptions();
    opts.max_epochs = 2;
    TrainTranAD(&model, windows, opts);
    return model.SnapshotParameters();
  };
  const auto a = train_once();
  const auto b = train_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].AllClose(b[i], 1e-6f)) << "param " << i;
  }
}

TEST(TrainerTest, PoisonedWindowsSkipStepsInsteadOfNaNingWeights) {
  // A few Inf cells (a dead sensor, a corrupt CSV row) must cost skipped
  // optimizer steps, not poison every weight irreversibly.
  Tensor windows = TrainingWindows();
  const int64_t stride = windows.size(1) * windows.size(2);
  for (int64_t i = 0; i < windows.size(0); i += 100) {
    windows.data()[i * stride] = std::numeric_limits<float>::infinity();
  }

  TranADModel model(SmallConfig());
  const TrainStats stats = TrainTranAD(&model, windows, FastOptions());
  EXPECT_GT(stats.skipped_non_finite, 0);
  for (const Tensor& p : model.SnapshotParameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p[i])) << "weight went non-finite";
    }
  }
}

TEST(TrainerTest, CleanDataSkipsNothing) {
  const Tensor windows = TrainingWindows(0.05);
  TranADModel model(SmallConfig());
  TrainOptions opts = FastOptions();
  opts.max_epochs = 2;
  const TrainStats stats = TrainTranAD(&model, windows, opts);
  EXPECT_EQ(stats.skipped_non_finite, 0);
}

TEST(TrainerTest, WrongDimsDies) {
  TranADModel model(SmallConfig());  // dims = 8
  Tensor windows({10, 6, 5});
  EXPECT_DEATH(TrainTranAD(&model, windows, FastOptions()), "CHECK");
}

TEST(TrainerTest, MamlStepChangesOutcome) {
  const Tensor windows = TrainingWindows(0.05);
  auto train_with = [&](bool maml) {
    TranADConfig c = SmallConfig();
    c.use_maml = maml;
    TranADModel model(c);
    TrainOptions opts = FastOptions();
    opts.max_epochs = 2;
    TrainTranAD(&model, windows, opts);
    return model.SnapshotParameters();
  };
  const auto with = train_with(true);
  const auto without = train_with(false);
  bool any_diff = false;
  for (size_t i = 0; i < with.size() && !any_diff; ++i) {
    any_diff = !with[i].AllClose(without[i], 1e-7f);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace tranad
