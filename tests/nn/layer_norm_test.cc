#include "nn/layer_norm.h"

#include <gtest/gtest.h>

#include "tensor/autograd_ops.h"

namespace tranad::nn {
namespace {

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(8);
  Rng rng(1);
  Variable x(Tensor::Randn({4, 8}, &rng, 3.0f));
  Variable y = ln.Forward(x);
  for (int64_t r = 0; r < 4; ++r) {
    float mean = 0.0f;
    for (int64_t c = 0; c < 8; ++c) mean += y.value().At({r, c});
    EXPECT_NEAR(mean / 8.0f, 0.0f, 1e-4);  // gain=1, bias=0 at init
  }
}

TEST(LayerNormTest, LearnedAffineApplies) {
  LayerNorm ln(4);
  auto params = ln.Parameters();
  ASSERT_EQ(params.size(), 2u);
  params[0].mutable_value()->Fill(2.0f);  // gain
  params[1].mutable_value()->Fill(0.5f);  // bias
  Rng rng(2);
  Variable x(Tensor::Randn({2, 4}, &rng));
  Variable y = ln.Forward(x);
  // mean of each row should now be bias = 0.5 (gain scales zero-mean data).
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0.0f;
    for (int64_t c = 0; c < 4; ++c) mean += y.value().At({r, c});
    EXPECT_NEAR(mean / 4.0f, 0.5f, 1e-4);
  }
}

TEST(LayerNormTest, GradFlowsToGainBias) {
  LayerNorm ln(4);
  Rng rng(3);
  Variable x(Tensor::Randn({3, 4}, &rng));
  ag::SumAll(ln.Forward(x)).Backward();
  auto params = ln.Parameters();
  bool any_nonzero = false;
  for (int64_t i = 0; i < 4; ++i) {
    any_nonzero |= params[0].grad()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  EXPECT_FLOAT_EQ(params[1].grad()[0], 3.0f);  // d(sum)/d(bias_j) = rows
}

TEST(LayerNormTest, WorksOn3D) {
  LayerNorm ln(6);
  Variable x(Tensor::Ones({2, 3, 6}));
  EXPECT_EQ(ln.Forward(x).shape(), Shape({2, 3, 6}));
}

TEST(LayerNormTest, WrongFeatureDimDies) {
  LayerNorm ln(4);
  EXPECT_DEATH(ln.Forward(Variable(Tensor::Ones({2, 5}))), "CHECK");
}

}  // namespace
}  // namespace tranad::nn
