#include "nn/module.h"

#include <cstdint>
#include <fstream>

#include "common/check.h"

namespace tranad::nn {

Variable Module::RegisterParameter(std::string name, Tensor init) {
  Variable v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), v);
  return v;
}

void Module::RegisterModule(std::string name, Module* child) {
  TRANAD_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

void Module::Collect(const std::string& prefix, std::vector<Variable>* params,
                     std::vector<std::string>* names) const {
  for (const auto& [name, v] : params_) {
    params->push_back(v);
    if (names != nullptr) names->push_back(prefix + name);
  }
  for (const auto& [name, child] : children_) {
    child->Collect(prefix + name + ".", params, names);
  }
}

std::vector<Variable> Module::Parameters() const {
  std::vector<Variable> out;
  Collect("", &out, nullptr);
  return out;
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<Variable> params;
  std::vector<std::string> names;
  Collect("", &params, &names);
  return names;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.value().numel();
  return n;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

std::vector<Tensor> Module::SnapshotParameters() const {
  std::vector<Tensor> out;
  for (const auto& p : Parameters()) out.push_back(p.value());
  return out;
}

void Module::RestoreParameters(const std::vector<Tensor>& snapshot) {
  auto params = Parameters();
  TRANAD_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    TRANAD_CHECK(params[i].value().shape() == snapshot[i].shape());
    *params[i].mutable_value() = snapshot[i];
  }
}

namespace {
constexpr uint32_t kMagic = 0x54414431;  // "TAD1"
}

Status Module::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const auto params = Parameters();
  const uint32_t magic = kMagic;
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const auto& t = p.value();
    const uint64_t nd = t.shape().size();
    out.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
    for (int64_t d : t.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status Module::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument(path + ": not a TranAD checkpoint");
  }
  auto params = Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(path + ": parameter count mismatch");
  }
  for (auto& p : params) {
    uint64_t nd = 0;
    in.read(reinterpret_cast<char*>(&nd), sizeof(nd));
    Shape shape(nd);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!in || shape != p.value().shape()) {
      return Status::InvalidArgument(path + ": parameter shape mismatch");
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) return Status::IoError(path + ": truncated checkpoint");
    *p.mutable_value() = std::move(t);
  }
  return Status::Ok();
}

}  // namespace tranad::nn
