#ifndef TRANAD_TENSOR_TENSOR_OPS_H_
#define TRANAD_TENSOR_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace tranad {

// Forward-only tensor kernels. These underpin both inference paths and the
// autograd layer in autograd_ops.h, which pairs each with its analytic
// backward. All binary element-wise ops broadcast numpy-style.

/// Result shape of broadcasting `a` against `b`; CHECK-fails if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Sums `t` over the axes that were broadcast to reach `t.shape()` from
/// `target`; used by backward passes of broadcasting ops.
Tensor ReduceTo(const Tensor& t, const Shape& target);

// ---- element-wise binary (broadcasting) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
/// Fused (a - b)^2, broadcasting; bit-identical to Square(Sub(a, b)) with
/// no intermediate tensor. The reconstruction-error hot path.
Tensor SquaredDiff(const Tensor& a, const Tensor& b);
/// Fused s * (a - b), same shapes only (MSE backward hot path).
Tensor ScaledDiff(const Tensor& a, const Tensor& b, float s);

// ---- element-wise with scalar ----
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- element-wise unary ----
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float slope);
/// Gaussian error linear unit (tanh approximation, as in transformer FFNs).
Tensor Gelu(const Tensor& a);

// ---- matmul / layout ----
/// Matrix product with batch broadcasting: both operands are treated as
/// stacks of matrices over their leading dims; a 2-d operand broadcasts
/// across the other's batch dims. Inner dims must satisfy (M,K)x(K,N).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Swaps the last two axes.
Tensor TransposeLast2(const Tensor& a);

/// Swaps axes 1 and 2 of a 4-d tensor [A, B, C, D] -> [A, C, B, D]; the
/// head split/merge step of batched multi-head attention.
Tensor SwapAxes12(const Tensor& a);

/// Concatenates along `axis` (negative axes allowed). All other dims must
/// match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Contiguous slice [start, start+len) along `axis`.
Tensor SliceAxis(const Tensor& a, int64_t axis, int64_t start, int64_t len);

// ---- reductions ----
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);
/// Fused mean((a - b)^2) over all elements; value-identical to
/// MeanAll(Square(Sub(a, b))) (same serial ordered-double accumulation as
/// SumAll) without materializing either intermediate.
float MseAll(const Tensor& a, const Tensor& b);
/// Sum over one axis; `keepdims` keeps a size-1 axis in place.
Tensor Sum(const Tensor& a, int64_t axis, bool keepdims);
Tensor Mean(const Tensor& a, int64_t axis, bool keepdims);
Tensor Max(const Tensor& a, int64_t axis, bool keepdims);

// ---- fused normalizations ----
/// Softmax over the last axis, numerically stabilised by row-max shift.
Tensor SoftmaxLastDim(const Tensor& a);
/// Layer normalization over the last axis:
/// (x - mean) / sqrt(var + eps). Gain/bias are applied by the nn layer.
Tensor LayerNormLastDim(const Tensor& a, float eps);
/// Fused LayerNorm + affine over the last axis:
/// ((x - mean) / sqrt(var + eps)) * gain + bias, with gain/bias of shape
/// [n]. Per-element identical to LayerNormLastDim followed by the broadcast
/// Mul/Add, in a single pass.
Tensor LayerNormAffineLastDim(const Tensor& a, const Tensor& gain,
                              const Tensor& bias, float eps);

}  // namespace tranad

#endif  // TRANAD_TENSOR_TENSOR_OPS_H_
