#include "baselines/registry.h"

#include "baselines/cae_m.h"
#include "baselines/dagmm.h"
#include "baselines/gdn.h"
#include "baselines/isolation_forest.h"
#include "baselines/lstm_ndt.h"
#include "baselines/mad_gan.h"
#include "baselines/merlin.h"
#include "baselines/mscred.h"
#include "baselines/mtad_gat.h"
#include "baselines/omni_anomaly.h"
#include "baselines/usad.h"
#include "core/tranad_detector.h"

namespace tranad {
namespace {

std::unique_ptr<AnomalyDetector> MakeTranAD(const DetectorOptions& options,
                                            const std::string& display_name,
                                            bool transformer, bool self_cond,
                                            bool adversarial, bool maml,
                                            bool bidirectional = false) {
  TranADConfig config;
  config.window = options.window;
  config.seed = options.seed;
  config.use_transformer = transformer;
  config.use_self_conditioning = self_cond;
  config.use_adversarial = adversarial;
  config.use_maml = maml;
  config.bidirectional = bidirectional;
  TrainOptions train;
  train.max_epochs = options.epochs;
  return std::make_unique<TranADDetector>(config, train, display_name);
}

}  // namespace

Result<std::unique_ptr<AnomalyDetector>> CreateDetector(
    const std::string& name, const DetectorOptions& options) {
  // Each baseline keeps its own paper-faithful sequence length and model
  // capacity (scaled for CPU): the originals consume far longer histories
  // than TranAD's K=10 window (LSTM-NDT 250, OmniAnomaly/MTAD-GAT 100,
  // MSCRED 60, MAD-GAN 30) and far wider recurrent states (OmniAnomaly
  // 500, MTAD-GAT 300, LSTM-NDT 80x2) — precisely the training-cost
  // asymmetry Table 5 measures against TranAD's 1-layer, 2m-wide model.
  const int64_t w = options.window;
  const int64_t e = options.epochs;
  const uint64_t s = options.seed;
  if (name == "TranAD") {
    return MakeTranAD(options, name, true, true, true, true);
  }
  if (name == "TranAD-Bidirectional") {
    // The paper's §6 future-work extension (offline detection only: the
    // window encoder sees the full window without the causal mask).
    return MakeTranAD(options, name, true, true, true, true,
                      /*bidirectional=*/true);
  }
  if (name == "TranAD-w/o-transformer") {
    return MakeTranAD(options, name, false, true, true, true);
  }
  if (name == "TranAD-w/o-self-cond") {
    return MakeTranAD(options, name, true, false, true, true);
  }
  if (name == "TranAD-w/o-adversarial") {
    return MakeTranAD(options, name, true, true, false, true);
  }
  if (name == "TranAD-w/o-MAML") {
    return MakeTranAD(options, name, true, true, true, false);
  }
  if (name == "MERLIN") {
    return std::unique_ptr<AnomalyDetector>(new MerlinDetector());
  }
  if (name == "MERLIN(naive)") {
    return std::unique_ptr<AnomalyDetector>(
        new MerlinDetector(8, 32, 8, /*naive=*/true));
  }
  if (name == "LSTM-NDT") {
    return std::unique_ptr<AnomalyDetector>(new LstmNdtDetector(5 * w, e, 64, s));
  }
  if (name == "DAGMM") {
    return std::unique_ptr<AnomalyDetector>(new DagmmDetector(w / 2, e, 3, 3, s));
  }
  if (name == "OmniAnomaly") {
    return std::unique_ptr<AnomalyDetector>(
        new OmniAnomalyDetector(4 * w, e, 128, 16, s));
  }
  if (name == "MSCRED") {
    return std::unique_ptr<AnomalyDetector>(new MscredDetector(2 * w, e, s));
  }
  if (name == "MAD-GAN") {
    return std::unique_ptr<AnomalyDetector>(new MadGanDetector(3 * w, e, 64, s));
  }
  if (name == "USAD") {
    return std::unique_ptr<AnomalyDetector>(new UsadDetector(w, e, 16, s));
  }
  if (name == "MTAD-GAT") {
    return std::unique_ptr<AnomalyDetector>(new MtadGatDetector(3 * w, e, 128, s));
  }
  if (name == "CAE-M") {
    return std::unique_ptr<AnomalyDetector>(new CaeMDetector(3 * w, e, 64, s));
  }
  if (name == "GDN") {
    return std::unique_ptr<AnomalyDetector>(new GdnDetector(w, e, 32, s));
  }
  if (name == "IsolationForest") {
    return std::unique_ptr<AnomalyDetector>(
        new IsolationForestDetector(50, 256, s));
  }
  return Status::NotFound("unknown detector: " + name);
}

std::vector<std::string> PaperMethodNames() {
  return {"MERLIN",  "LSTM-NDT", "DAGMM", "OmniAnomaly", "MSCRED", "MAD-GAN",
          "USAD",    "MTAD-GAT", "CAE-M", "GDN",         "TranAD"};
}

std::vector<std::string> AblationMethodNames() {
  return {"TranAD", "TranAD-w/o-transformer", "TranAD-w/o-self-cond",
          "TranAD-w/o-adversarial", "TranAD-w/o-MAML"};
}

}  // namespace tranad
