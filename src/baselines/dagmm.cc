#include "baselines/dagmm.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"

namespace tranad {

DagmmDetector::DagmmDetector(int64_t window, int64_t epochs, int64_t latent,
                             int64_t mixtures, uint64_t seed)
    : WindowedDetector("DAGMM", window, epochs, 128),
      latent_(latent),
      mixtures_(mixtures),
      seed_(seed) {}

void DagmmDetector::BuildModel(int64_t dims) {
  Rng rng(seed_);
  flat_dim_ = window_ * dims;
  const int64_t hidden = std::max<int64_t>(8, flat_dim_ / 2);
  enc1_ = std::make_unique<nn::Linear>(flat_dim_, hidden, &rng);
  enc2_ = std::make_unique<nn::Linear>(hidden, latent_, &rng);
  dec1_ = std::make_unique<nn::Linear>(latent_, hidden, &rng);
  dec2_ = std::make_unique<nn::Linear>(hidden, flat_dim_, &rng);
  std::vector<Variable> params;
  for (auto* m : {enc1_.get(), enc2_.get(), dec1_.get(), dec2_.get()}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  opt_ = std::make_unique<nn::Adam>(params, 0.005f);
  gmm_ = std::make_unique<DiagonalGmm>(mixtures_, latent_ + 1);
}

Variable DagmmDetector::Encode(const Variable& flat) const {
  return enc2_->Forward(ag::Tanh(enc1_->Forward(flat)));
}
Variable DagmmDetector::Decode(const Variable& z) const {
  return ag::Sigmoid(dec2_->Forward(ag::Tanh(dec1_->Forward(z))));
}

double DagmmDetector::TrainBatch(const Tensor& batch, double /*progress*/) {
  const int64_t b = batch.size(0);
  const Tensor flat_t = batch.Reshape({b, flat_dim_});
  Variable flat(flat_t);
  Variable recon = Decode(Encode(flat));
  Variable loss = ag::MseLoss(recon, flat_t);
  opt_->ZeroGrad();
  loss.Backward();
  opt_->ClipGradNorm(5.0f);
  opt_->Step();
  return loss.value().Item();
}

Tensor DagmmDetector::Features(const Tensor& batch,
                               Tensor* per_dim_err) const {
  const int64_t b = batch.size(0);
  const Tensor flat_t = batch.Reshape({b, flat_dim_});
  Variable flat(flat_t);
  Variable z = Encode(flat);
  Variable recon = Decode(z);
  Tensor features({b, latent_ + 1});
  if (per_dim_err != nullptr) *per_dim_err = Tensor({b, dims_});
  const float* pz = z.value().data();
  const float* pr = recon.value().data();
  const float* pt = flat_t.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < latent_; ++j) {
      features.At({i, j}) = pz[i * latent_ + j];
    }
    double err = 0.0;
    for (int64_t j = 0; j < flat_dim_; ++j) {
      const double e = pr[i * flat_dim_ + j] - pt[i * flat_dim_ + j];
      err += e * e;
    }
    features.At({i, latent_}) =
        static_cast<float>(std::sqrt(err / static_cast<double>(flat_dim_)));
    if (per_dim_err != nullptr) {
      for (int64_t d = 0; d < dims_; ++d) {
        const int64_t idx = i * flat_dim_ + (window_ - 1) * dims_ + d;
        const float e = pr[idx] - pt[idx];
        per_dim_err->At({i, d}) = e * e;
      }
    }
  }
  return features;
}

void DagmmDetector::PostTrain(const Tensor& windows) {
  // Fit the mixture on (a subsample of) the training representation.
  const int64_t n = windows.size(0);
  const int64_t cap = std::min<int64_t>(n, 2048);
  const Tensor sample =
      n == cap ? windows : SliceAxis(windows, 0, 0, cap);
  const Tensor features = Features(sample, nullptr);
  gmm_->Fit(features, &gmm_rng_);
}

Tensor DagmmDetector::ScoreBatch(const Tensor& batch) {
  Tensor per_dim_err;
  const Tensor features = Features(batch, &per_dim_err);
  const std::vector<double> energies = gmm_->Energies(features);
  // Per-dimension score: reconstruction error modulated by the sample
  // energy (DAGMM itself is a whole-sample scorer; the modulation gives the
  // diagnosis ranking a defined meaning).
  const int64_t b = batch.size(0);
  Tensor out({b, dims_});
  for (int64_t i = 0; i < b; ++i) {
    const double e = energies[static_cast<size_t>(i)];
    const double boost = 1.0 + std::max(0.0, e);
    for (int64_t d = 0; d < dims_; ++d) {
      out.At({i, d}) =
          static_cast<float>(per_dim_err.At({i, d}) * boost);
    }
  }
  return out;
}

}  // namespace tranad
