#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tranad {
namespace {

TEST(ConfusionTest, CountsAllQuadrants) {
  const std::vector<uint8_t> pred{1, 1, 0, 0};
  const std::vector<uint8_t> truth{1, 0, 1, 0};
  const auto c = CountConfusion(pred, truth);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(PrfTest, KnownValues) {
  ConfusionCounts c{.tp = 8, .fp = 2, .tn = 80, .fn = 10};
  EXPECT_DOUBLE_EQ(PrecisionOf(c), 0.8);
  EXPECT_NEAR(RecallOf(c), 8.0 / 18.0, 1e-12);
  const double p = 0.8;
  const double r = 8.0 / 18.0;
  EXPECT_NEAR(F1Of(c), 2 * p * r / (p + r), 1e-12);
}

TEST(PrfTest, DegenerateCasesZero) {
  ConfusionCounts empty;
  EXPECT_DOUBLE_EQ(PrecisionOf(empty), 0.0);
  EXPECT_DOUBLE_EQ(RecallOf(empty), 0.0);
  EXPECT_DOUBLE_EQ(F1Of(empty), 0.0);
}

TEST(PointAdjustTest, WholeSegmentCreditedOnAnyHit) {
  const std::vector<uint8_t> truth{0, 1, 1, 1, 0, 1, 1, 0};
  const std::vector<uint8_t> pred{0, 0, 1, 0, 0, 0, 0, 0};
  const auto adj = PointAdjust(pred, truth);
  EXPECT_EQ(adj, (std::vector<uint8_t>{0, 1, 1, 1, 0, 0, 0, 0}));
}

TEST(PointAdjustTest, MissedSegmentStaysMissed) {
  const std::vector<uint8_t> truth{1, 1, 0};
  const std::vector<uint8_t> pred{0, 0, 1};
  const auto adj = PointAdjust(pred, truth);
  EXPECT_EQ(adj[0], 0);
  EXPECT_EQ(adj[1], 0);
  EXPECT_EQ(adj[2], 1);  // false positive untouched
}

TEST(PointAdjustTest, NoTruthIsIdentity) {
  const std::vector<uint8_t> truth{0, 0, 0};
  const std::vector<uint8_t> pred{1, 0, 1};
  EXPECT_EQ(PointAdjust(pred, truth), pred);
}

TEST(ApplyThresholdTest, InclusiveBoundary) {
  const auto pred = ApplyThreshold({1.0, 2.0, 3.0}, 2.0);
  EXPECT_EQ(pred, (std::vector<uint8_t>{0, 1, 1}));
}

TEST(RocAucTest, PerfectSeparation) {
  const std::vector<double> scores{0.1, 0.2, 0.9, 0.8};
  const std::vector<uint8_t> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, truth), 1.0);
}

TEST(RocAucTest, PerfectInversionIsZero) {
  const std::vector<double> scores{0.9, 0.8, 0.1, 0.2};
  const std::vector<uint8_t> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, truth), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<double> scores(2000);
  std::vector<uint8_t> truth(2000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.Uniform();
    truth[i] = rng.Bernoulli(0.2);
  }
  EXPECT_NEAR(RocAuc(scores, truth), 0.5, 0.05);
}

TEST(RocAucTest, TiesAveraged) {
  const std::vector<double> scores{1.0, 1.0, 1.0, 1.0};
  const std::vector<uint8_t> truth{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, truth), 0.5);
}

TEST(RocAucTest, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1.0, 2.0}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({1.0, 2.0}, {1, 1}), 0.5);
}

TEST(EvaluateAtThresholdTest, AppliesPointAdjust) {
  // Truth segment [1,3]; scores only exceed at index 2.
  const std::vector<double> scores{0.0, 0.1, 5.0, 0.1, 0.0};
  const std::vector<uint8_t> truth{0, 1, 1, 1, 0};
  const auto m = EvaluateAtThreshold(scores, truth, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);  // whole segment credited
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(EvaluateBestF1Test, FindsSeparatingThreshold) {
  std::vector<double> scores(100, 0.1);
  std::vector<uint8_t> truth(100, 0);
  for (int i = 40; i < 44; ++i) {
    scores[static_cast<size_t>(i)] = 0.9;
    truth[static_cast<size_t>(i)] = 1;
  }
  const auto m = EvaluateBestF1(scores, truth);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_GT(m.threshold, 0.1);
  EXPECT_LE(m.threshold, 0.9);
}

TEST(EvaluateBestF1Test, ImperfectScoresGivePartialF1) {
  // Overlapping score distributions cannot reach F1 = 1 without
  // point-adjust rescue: use isolated single-point anomalies.
  std::vector<double> scores;
  std::vector<uint8_t> truth;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const bool anom = i % 20 == 10;
    scores.push_back(anom ? rng.Uniform(0.4, 1.0) : rng.Uniform(0.0, 0.6));
    truth.push_back(anom ? 1 : 0);
    scores.push_back(0.0);  // spacer keeps segments isolated
    truth.push_back(0);
  }
  const auto m = EvaluateBestF1(scores, truth);
  EXPECT_GT(m.f1, 0.3);
  EXPECT_LT(m.f1, 1.0);
}

TEST(EvaluateBestF1Test, SubsamplingStillCoversRange) {
  std::vector<double> scores(5000);
  std::vector<uint8_t> truth(5000, 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(i);
  }
  truth[4999] = 1;
  const auto m = EvaluateBestF1(scores, truth, 64);
  EXPECT_GT(m.f1, 0.0);
}

TEST(MetricsDeathTest, SizeMismatchDies) {
  EXPECT_DEATH(CountConfusion({1}, {1, 0}), "CHECK");
  EXPECT_DEATH(RocAuc({1.0}, {1, 0}), "CHECK");
}

}  // namespace
}  // namespace tranad
