#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "net/server.h"
#include "fleet_fixture.h"

namespace tranad::net {
namespace {

using failpoint::Action;
using failpoint::Schedule;
using failpoint::ScopedFailpoint;
using serve::ShardRouter;
using serve::ShardRouterOptions;

// Client-resilience suite: seeded backoff, connect retry, tracked-submit
// retry with server-side dedup, keepalive, and graceful drain — the client
// half of the failover story. Invariant throughout: every tracked tag gets
// exactly one final verdict, duplicates never reach the handler.
class BackoffTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static ShardRouterOptions RouterOptions(int64_t shards) {
    ShardRouterOptions options;
    options.num_shards = shards;
    options.shard.num_workers = 1;
    options.shard.max_batch = 4;
    options.shard.max_wait_us = 100;
    options.shard.pot = PotParamsForDataset("SMAP");
    return options;
  }

  /// Counts verdicts per (stream, tag); flags any duplicate delivery.
  struct TagLog {
    std::mutex mu;
    std::map<std::pair<uint64_t, uint64_t>, std::vector<Status>> verdicts;
    bool duplicate = false;

    void Record(const WireVerdict& v) {
      std::lock_guard<std::mutex> lock(mu);
      auto& list = verdicts[{v.stream_key, v.tag}];
      if (!list.empty()) duplicate = true;
      list.push_back(v.status);
    }
    size_t Count() {
      std::lock_guard<std::mutex> lock(mu);
      return verdicts.size();
    }
  };

  /// Polls until the client has no tracked submissions in flight.
  static bool AwaitSettled(NetClient* client, int64_t timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (client->pending_tracked() > 0) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }
};

TEST_F(BackoffTest, BackoffDelayIsDeterministicJitteredAndCapped) {
  // Pure function: identical inputs, identical delay — the property that
  // makes reconnect schedules replayable in tests and incident forensics.
  for (int64_t attempt = 0; attempt < 12; ++attempt) {
    const int64_t a = BackoffDelayMs(attempt, 50, 2000, 7);
    const int64_t b = BackoffDelayMs(attempt, 50, 2000, 7);
    EXPECT_EQ(a, b);
    // Jitter lands in [base/2, base) of the capped exponential base.
    int64_t base = 50;
    for (int64_t k = 0; k < attempt && base < 2000; ++k) base *= 2;
    if (base > 2000) base = 2000;
    EXPECT_GE(a, base / 2) << "attempt " << attempt;
    EXPECT_LT(a, base) << "attempt " << attempt;
  }
  // Deep attempts saturate at the cap instead of overflowing.
  const int64_t deep = BackoffDelayMs(60, 50, 2000, 7);
  EXPECT_GE(deep, 1000);
  EXPECT_LT(deep, 2000);
  // Different seeds de-correlate: two clients never stampede in lockstep.
  bool seeds_differ = false;
  for (int64_t attempt = 0; attempt < 10 && !seeds_differ; ++attempt) {
    seeds_differ =
        BackoffDelayMs(attempt, 50, 2000, 1) !=
        BackoffDelayMs(attempt, 50, 2000, 2);
  }
  EXPECT_TRUE(seeds_differ);
}

// The serve_loadgen startup race, distilled: the client dials before the
// server has bound. ConnectWithBackoff keeps retrying the refused dial on
// the backoff schedule and wins once the server appears.
TEST_F(BackoffTest, ConnectWithBackoffSurvivesLateServerStart) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));

  // Reserve an ephemeral port, then release it (SO_REUSEADDR makes the
  // rebind race-free against our own re-listen).
  uint16_t port = 0;
  {
    NetServer probe(&router);
    ASSERT_TRUE(probe.Start().ok());
    port = probe.port();
    probe.Stop();
  }

  ServerOptions options;
  options.port = port;
  NetServer server(&router, options);
  std::thread late_start([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const Status st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  });

  ClientOptions copts;
  copts.backoff_initial_ms = 20;
  copts.backoff_max_ms = 200;
  copts.connect_timeout_ms = 2000;
  NetClient client(copts);
  const Status connected = client.ConnectWithBackoff("127.0.0.1", port, 60);
  late_start.join();
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(BackoffTest, ConnectWithBackoffGivesUpAgainstDeadPort) {
  const TestFleet& fleet = TestFleet::Get();
  uint16_t dead_port = 0;
  {
    ShardRouter router(fleet.detector, RouterOptions(1));
    NetServer probe(&router);
    ASSERT_TRUE(probe.Start().ok());
    dead_port = probe.port();
  }  // server gone; the port now refuses connections

  ClientOptions copts;
  copts.backoff_initial_ms = 10;
  copts.backoff_max_ms = 40;
  NetClient client(copts);
  const Status st = client.ConnectWithBackoff("127.0.0.1", dead_port, 3);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(client.connected());
}

// A slow verdict crosses the client's retry timer: the resends reach the
// server as duplicates, the dedup cache coalesces them onto the in-flight
// scoring, and the handler still fires exactly once.
TEST_F(BackoffTest, TrackedResendsAreDedupedToOneVerdict) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  // Every scoring pass stalls 120ms; the client resends at 30ms.
  ScopedFailpoint slow("serve.worker.score", Action::Delay(120'000));

  ClientOptions copts;
  copts.submit_retry_ms = 30;
  copts.submit_max_retries = 8;
  NetClient client(copts);
  TagLog log;
  client.set_verdict_handler([&](const WireVerdict& v) { log.Record(v); });
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateStream(1, fleet.datasets[0].train.values).ok());

  const Tensor obs = fleet.Observation(0, 0);
  ASSERT_TRUE(client.SubmitTracked(1, 42, obs.data(), obs.numel()).ok());
  ASSERT_TRUE(AwaitSettled(&client, 10'000));

  {
    std::lock_guard<std::mutex> lock(log.mu);
    const auto key = std::make_pair(uint64_t{1}, uint64_t{42});
    ASSERT_EQ(log.verdicts.count(key), 1u);
    EXPECT_FALSE(log.duplicate) << "a resend produced a second verdict";
    EXPECT_TRUE(log.verdicts[key][0].ok());
  }
  const ClientCounters counters = client.counters();
  EXPECT_GE(counters.retries_sent, 1) << "the 120ms stall must trigger "
                                         "at least one 30ms resend";
  EXPECT_GE(server.submits_deduped_total(), 1)
      << "the server never saw (or never suppressed) the duplicate";
}

// A duplicate tag arriving AFTER completion replays the cached verdict
// instead of re-scoring: stream state advances exactly once. The duplicate
// comes from a second connection — dedup is keyed by (stream, tag), which
// is exactly what makes a reconnect-and-resend safe.
TEST_F(BackoffTest, CompletedDuplicateReplaysCachedVerdict) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  std::mutex mu;
  std::vector<WireVerdict> got;
  auto handler = [&](const WireVerdict& v) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(v);
  };
  auto wait_for = [&](size_t n) {
    for (int i = 0; i < 1000; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (got.size() >= n) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  NetClient first;
  first.set_verdict_handler(handler);
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(first.CreateStream(1, fleet.datasets[0].train.values).ok());

  const Tensor obs = fleet.Observation(0, 0);
  ASSERT_TRUE(first.SubmitTracked(1, 7, obs.data(), obs.numel()).ok());
  ASSERT_TRUE(wait_for(1));  // scored and delivered: the entry is done

  NetClient second;
  second.set_verdict_handler(handler);
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(second.SubmitTracked(1, 7, obs.data(), obs.numel()).ok());
  ASSERT_TRUE(wait_for(2));

  router.Flush();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(got.size(), 2u);
  // Byte-identical replay: same seq, same score, and the fleet scored it
  // exactly once (completed == 1, not 2).
  EXPECT_EQ(got[0].seq, got[1].seq);
  EXPECT_EQ(got[0].score, got[1].score);
  EXPECT_EQ(router.stats().completed, 1);
  EXPECT_EQ(server.submits_deduped_total(), 1);
}

// Retry THROUGH a failover: the kill refuses the tracked submit with a
// retryable status, the client resends on its timer, and once the stream
// has migrated the retry scores — one Ok verdict, zero duplicates.
TEST_F(BackoffTest, TrackedSubmitRetriesThroughShardFailover) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(2));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.submit_retry_ms = 30;
  copts.submit_max_retries = 20;
  NetClient client(copts);
  TagLog log;
  client.set_verdict_handler([&](const WireVerdict& v) { log.Record(v); });
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateStream(1, fleet.datasets[0].train.values).ok());

  const Tensor obs = fleet.Observation(0, 0);
  {
    ScopedFailpoint kill("shard.kill", Action::Error(StatusCode::kUnavailable),
                         Schedule::OnHit(1));
    ASSERT_TRUE(client.SubmitTracked(1, 99, obs.data(), obs.numel()).ok());
    ASSERT_TRUE(AwaitSettled(&client, 10'000))
        << "the retry never made it through the failover";
  }
  router.WaitForFailovers();

  {
    std::lock_guard<std::mutex> lock(log.mu);
    const auto key = std::make_pair(uint64_t{1}, uint64_t{99});
    ASSERT_EQ(log.verdicts.count(key), 1u);
    EXPECT_FALSE(log.duplicate);
    EXPECT_TRUE(log.verdicts[key][0].ok())
        << log.verdicts[key][0].ToString();
  }
  EXPECT_GE(client.counters().retries_sent, 1);
  EXPECT_EQ(router.shards_failed(), 1);
  EXPECT_GE(router.streams_migrated(), 1);
}

// Keepalive pings flow on an idle connection and are invisible to RPCs.
TEST_F(BackoffTest, KeepalivePingsFlowOnIdleConnection) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.keepalive_ms = 20;
  NetClient client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GE(client.counters().keepalive_pings, 1)
      << "200ms idle at keepalive_ms=20 must ping";
  // The fire-and-forget pongs did not confuse the RPC demux.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.connected());
}

// Graceful drain end to end: Drain() announces to every client, later
// submits are refused with Unavailable, in-flight verdicts still deliver,
// WaitForDrain flushes every outbox, and the client reports drained().
TEST_F(BackoffTest, DrainNotifiesClientsAndRefusesNewSubmits) {
  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(1));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  TagLog log;
  NetClient client;
  client.set_verdict_handler([&](const WireVerdict& v) { log.Record(v); });
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.CreateStream(1, fleet.datasets[0].train.values).ok());

  const Tensor obs = fleet.Observation(0, 0);
  ASSERT_TRUE(client.Submit(1, 1, obs.data(), obs.numel()).ok());
  // Let the pre-drain submit complete so its verdict is truly in flight
  // (or delivered) when the drain begins.
  for (int i = 0; i < 1000 && log.Count() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(log.Count(), 1u);

  server.Drain("rolling restart");
  for (int i = 0; i < 1000 && !client.drained(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(client.drained()) << "the kDrain frame never arrived";

  // A submit after the drain is refused immediately with the retryable
  // code — the client's cue to fail over to another replica.
  ASSERT_TRUE(client.Submit(1, 2, obs.data(), obs.numel()).ok());
  for (int i = 0; i < 1000 && log.Count() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(log.mu);
    const auto key = std::make_pair(uint64_t{1}, uint64_t{2});
    ASSERT_EQ(log.verdicts.count(key), 1u);
    EXPECT_EQ(log.verdicts[key][0].code(), StatusCode::kUnavailable);
  }

  router.Flush();
  EXPECT_TRUE(server.WaitForDrain(5000).ok());
  server.Stop();
  // New connections are refused once draining (the listen socket closed).
  NetClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

// CI matrix entry point: the chaos-failover job arms shard-kill schedules
// from TRANAD_FAILPOINTS and runs this soak. Invariants under any armed
// schedule: every tracked tag completes exactly once (zero duplicates),
// and fleet accounting balances (submitted == completed + failed).
TEST_F(BackoffTest, EnvScheduleChaosFailoverSoak) {
  const char* preset = std::getenv("TRANAD_FAILPOINTS");
  if (preset == nullptr || preset[0] == '\0') {
    ::setenv("TRANAD_FAILPOINTS", "shard.kill=err:unavailable@40", 1);
    ASSERT_TRUE(failpoint::ArmFromEnv().ok());
    ::unsetenv("TRANAD_FAILPOINTS");
  } else {
    ASSERT_TRUE(failpoint::ArmFromEnv().ok());
  }

  const TestFleet& fleet = TestFleet::Get();
  ShardRouter router(fleet.detector, RouterOptions(2));
  NetServer server(&router);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.submit_retry_ms = 25;
  copts.submit_max_retries = 20;
  copts.reconnect_max_attempts = 10;
  NetClient client(copts);
  TagLog log;
  client.set_verdict_handler([&](const WireVerdict& v) { log.Record(v); });
  ASSERT_TRUE(client.ConnectWithBackoff("127.0.0.1", server.port(), 10).ok());
  for (uint64_t s = 0; s < TestFleet::kNumStreams; ++s) {
    ASSERT_TRUE(
        client.CreateStream(s + 1, fleet.datasets[s].train.values).ok());
  }

  const int64_t per_stream = 30;
  int64_t sent = 0;
  for (int64_t t = 0; t < per_stream; ++t) {
    for (uint64_t s = 0; s < TestFleet::kNumStreams; ++s) {
      const Tensor obs =
          fleet.Observation(s, t % fleet.datasets[s].test.length());
      const uint64_t tag = static_cast<uint64_t>(t) * 10 + s;
      if (client.SubmitTracked(s + 1, tag, obs.data(), obs.numel()).ok()) {
        ++sent;
      }
    }
  }
  EXPECT_TRUE(AwaitSettled(&client, 30'000)) << "soak never settled";
  router.WaitForFailovers();
  router.Flush();

  {
    std::lock_guard<std::mutex> lock(log.mu);
    EXPECT_FALSE(log.duplicate) << "a tag was delivered twice";
    EXPECT_EQ(log.verdicts.size(), static_cast<size_t>(sent))
        << "a tracked submission vanished";
  }
  const auto stats = router.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed)
      << "fleet accounting does not balance";
}

}  // namespace
}  // namespace tranad::net
