file(REMOVE_RECURSE
  "CMakeFiles/tranad_cli.dir/tranad_cli.cc.o"
  "CMakeFiles/tranad_cli.dir/tranad_cli.cc.o.d"
  "tranad_cli"
  "tranad_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
