#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"

namespace tranad::failpoint {

namespace internal {
std::atomic<int64_t> g_armed_sites{0};
}  // namespace internal

namespace {

struct SiteState {
  Action action;
  Schedule schedule;
  int64_t hits = 0;   // evaluations since armed
  int64_t fires = 0;  // evaluations the schedule selected
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

// Leaked singleton: failpoints may be evaluated from detached/worker
// threads during process teardown, so the registry must outlive statics.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool Selects(const Schedule& schedule, int64_t hit) {
  if (!schedule.hits.empty()) {
    return std::find(schedule.hits.begin(), schedule.hits.end(), hit) !=
           schedule.hits.end();
  }
  if (schedule.every_k > 0) return hit % schedule.every_k == 0;
  return true;
}

bool ParseInt(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

bool ParseCode(std::string_view name, StatusCode* out) {
  if (name == "io") *out = StatusCode::kIoError;
  else if (name == "internal") *out = StatusCode::kInternal;
  else if (name == "unavailable") *out = StatusCode::kUnavailable;
  else if (name == "deadline") *out = StatusCode::kDeadlineExceeded;
  else if (name == "invalid") *out = StatusCode::kInvalidArgument;
  else if (name == "notfound") *out = StatusCode::kNotFound;
  else if (name == "resource") *out = StatusCode::kResourceExhausted;
  else if (name == "precondition") *out = StatusCode::kFailedPrecondition;
  else return false;
  return true;
}

Status ParseEntry(std::string_view entry, std::string* site, Action* action,
                  Schedule* schedule) {
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("failpoint spec '" + std::string(entry) +
                                   "': " + why);
  };
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return bad("expected site=action[@schedule]");
  }
  *site = std::string(Trim(entry.substr(0, eq)));

  std::string_view rest = entry.substr(eq + 1);
  std::string_view action_str = rest;
  std::string_view schedule_str;
  const size_t at = rest.find('@');
  if (at != std::string_view::npos) {
    action_str = rest.substr(0, at);
    schedule_str = rest.substr(at + 1);
  }
  action_str = Trim(action_str);
  schedule_str = Trim(schedule_str);

  // Action: err[:code] | delay:micros | trunc:bytes
  std::string_view action_name = action_str;
  std::string_view action_arg;
  const size_t colon = action_str.find(':');
  if (colon != std::string_view::npos) {
    action_name = action_str.substr(0, colon);
    action_arg = action_str.substr(colon + 1);
  }
  if (action_name == "err") {
    *action = Action::Error();
    if (!action_arg.empty() && !ParseCode(action_arg, &action->code)) {
      return bad("unknown status code '" + std::string(action_arg) + "'");
    }
  } else if (action_name == "delay") {
    int64_t micros = 0;
    if (!ParseInt(action_arg, &micros)) {
      return bad("delay needs a microsecond count (delay:5000)");
    }
    *action = Action::Delay(micros);
  } else if (action_name == "trunc") {
    int64_t bytes = 0;
    if (!ParseInt(action_arg, &bytes)) {
      return bad("trunc needs a byte count (trunc:16)");
    }
    *action = Action::Truncate(bytes);
  } else {
    return bad("unknown action '" + std::string(action_name) +
               "' (err|delay|trunc)");
  }

  // Schedule: always | once | everyK | N[,N...]
  if (schedule_str.empty() || schedule_str == "always") {
    *schedule = Schedule::Always();
  } else if (schedule_str == "once") {
    *schedule = Schedule::OnHit(1);
  } else if (schedule_str.substr(0, 5) == "every") {
    int64_t k = 0;
    if (!ParseInt(schedule_str.substr(5), &k) || k <= 0) {
      return bad("everyK needs a positive K (every2)");
    }
    *schedule = Schedule::EveryK(k);
  } else {
    std::vector<int64_t> hits;
    for (const std::string& piece : Split(schedule_str, ',')) {
      int64_t n = 0;
      if (!ParseInt(Trim(piece), &n) || n <= 0) {
        return bad("hit list entries must be positive integers");
      }
      hits.push_back(n);
    }
    *schedule = Schedule::HitList(std::move(hits));
  }
  return Status::Ok();
}

}  // namespace

Status Action::ToStatus(const std::string& context) const {
  return Status(code, "injected failure at " + context);
}

Action Action::Error(StatusCode code) {
  Action a;
  a.kind = ActionKind::kError;
  a.code = code;
  return a;
}

Action Action::Delay(int64_t micros) {
  Action a;
  a.kind = ActionKind::kDelay;
  a.delay_us = micros;
  return a;
}

Action Action::Truncate(int64_t bytes) {
  Action a;
  a.kind = ActionKind::kTruncate;
  a.truncate_bytes = bytes;
  return a;
}

void Arm(const std::string& site, Action action, Schedule schedule) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) {
    registry.sites.emplace(site, SiteState{action, std::move(schedule), 0, 0});
    internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Re-arming replaces the action/schedule and restarts the hit counter.
    it->second = SiteState{action, std::move(schedule), 0, 0};
  }
}

bool Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.sites.erase(site) == 0) return false;
  internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  internal::g_armed_sites.fetch_sub(
      static_cast<int64_t>(registry.sites.size()), std::memory_order_relaxed);
  registry.sites.clear();
}

int64_t HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

int64_t FireCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

Status ArmFromSpec(const std::string& spec) {
  // Parse everything first so a malformed spec arms nothing.
  std::vector<std::pair<std::string, std::pair<Action, Schedule>>> parsed;
  for (const std::string& entry : Split(spec, ';')) {
    if (Trim(entry).empty()) continue;
    std::string site;
    Action action;
    Schedule schedule;
    TRANAD_RETURN_IF_ERROR(ParseEntry(Trim(entry), &site, &action, &schedule));
    parsed.emplace_back(std::move(site), std::make_pair(action, schedule));
  }
  for (auto& [site, armed] : parsed) {
    Arm(site, armed.first, std::move(armed.second));
  }
  return Status::Ok();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("TRANAD_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::Ok();
  return ArmFromSpec(spec);
}

Action Hit(const char* site) {
  Registry& registry = GetRegistry();
  Action fired;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return Action{};
    SiteState& state = it->second;
    ++state.hits;
    if (!Selects(state.schedule, state.hits)) return Action{};
    ++state.fires;
    fired = state.action;
  }
  // Sleep outside the registry lock so a delay at one site never serializes
  // hits at other sites.
  if (fired.is_delay() && fired.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(fired.delay_us));
  }
  return fired;
}

}  // namespace tranad::failpoint
