#ifndef TRANAD_NN_LINEAR_H_
#define TRANAD_NN_LINEAR_H_

#include "nn/module.h"

namespace tranad::nn {

/// Fully connected layer: y = x @ W + b with W of shape [in, out]. Accepts
/// inputs of any rank >= 1 whose last axis equals `in`.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  Variable Forward(const Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;
  Variable bias_;
  bool has_bias_;
};

}  // namespace tranad::nn

#endif  // TRANAD_NN_LINEAR_H_
