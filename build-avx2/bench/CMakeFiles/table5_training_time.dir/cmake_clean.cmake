file(REMOVE_RECURSE
  "CMakeFiles/table5_training_time.dir/table5_training_time.cc.o"
  "CMakeFiles/table5_training_time.dir/table5_training_time.cc.o.d"
  "table5_training_time"
  "table5_training_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
