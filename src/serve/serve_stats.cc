#include "serve/serve_stats.h"

#include <algorithm>

#include "common/check.h"

namespace tranad::serve {

ServeStats::ServeStats(int64_t max_batch, int64_t reservoir_size) {
  TRANAD_CHECK_GT(max_batch, 0);
  TRANAD_CHECK_GT(reservoir_size, 0);
  batch_size_hist_.assign(static_cast<size_t>(max_batch) + 1, 0);
  latency_reservoir_.reserve(static_cast<size_t>(reservoir_size));
  reservoir_capacity_ = reservoir_size;
}

void ServeStats::RecordSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
}

void ServeStats::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServeStats::RecordBatch(int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_observations_ += batch_size;
  if (batch_size >= 0 &&
      batch_size < static_cast<int64_t>(batch_size_hist_.size())) {
    ++batch_size_hist_[static_cast<size_t>(batch_size)];
  }
}

void ServeStats::RecordCompletion(double latency_ms, bool anomalous) {
  std::lock_guard<std::mutex> lock(mu_);
  if (anomalous) ++anomalies_;
  max_latency_ms_ = std::max(max_latency_ms_, latency_ms);
  if (static_cast<int64_t>(latency_reservoir_.size()) < reservoir_capacity_) {
    latency_reservoir_.push_back(latency_ms);
  } else {
    latency_reservoir_[static_cast<size_t>(completed_ % reservoir_capacity_)] =
        latency_ms;
  }
  ++completed_;
}

void ServeStats::RecordFailure(StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  ++failed_;
  if (code == StatusCode::kDeadlineExceeded) ++deadline_expired_;
  if (code == StatusCode::kUnavailable) ++shed_;
}

void ServeStats::RecordNonFiniteRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++non_finite_rejected_;
}

void ServeStats::RecordQuarantined() {
  std::lock_guard<std::mutex> lock(mu_);
  ++quarantined_streams_;
}

void ServeStats::RecordWatchdogStall() {
  std::lock_guard<std::mutex> lock(mu_);
  ++watchdog_stalls_;
}

void ServeStats::RecordReload(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++reloads_;
  } else {
    ++reload_failures_;
  }
}

ServeStatsSnapshot ServeStats::Snapshot(int64_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStatsSnapshot s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.anomalies = anomalies_;
  s.failed = failed_;
  s.deadline_expired = deadline_expired_;
  s.shed = shed_;
  s.non_finite_rejected = non_finite_rejected_;
  s.quarantined_streams = quarantined_streams_;
  s.watchdog_stalls = watchdog_stalls_;
  s.reloads = reloads_;
  s.reload_failures = reload_failures_;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_observations_) /
                          static_cast<double>(batches_);
  s.batch_size_hist = batch_size_hist_;
  s.queue_depth = queue_depth;
  s.max_latency_ms = max_latency_ms_;
  s.elapsed_seconds = started_.ElapsedSeconds();
  s.throughput_per_sec =
      s.elapsed_seconds <= 0.0
          ? 0.0
          : static_cast<double>(completed_) / s.elapsed_seconds;
  if (!latency_reservoir_.empty()) {
    std::vector<double> sorted = latency_reservoir_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const size_t idx = static_cast<size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)];
    };
    s.p50_latency_ms = at(0.50);
    s.p99_latency_ms = at(0.99);
  }
  return s;
}

}  // namespace tranad::serve
