#include "tensor/kernels.h"

#include <cstring>
#include <string>

#include "common/check.h"
#include "common/env.h"
#include "tensor/simd.h"

namespace tranad::kernels {
namespace {

using simd::kLanes;
using simd::LoadVec;
using simd::NativeVec;
using simd::ScalarVec;
using simd::SetAll;

// Bring the overloaded per-lane primitives into scope so the op structs
// below resolve the float / ScalarVec / NativeVec overload uniformly.
using simd::Abs;
using simd::Add;
using simd::Div;
using simd::ExpV;
using simd::HAdd;
using simd::HMax;
using simd::Max;
using simd::MaxStd;
using simd::Mul;
using simd::Neg;
using simd::SelectGtZero;
using simd::SigmoidV;
using simd::Sqrt;
using simd::StoreU;
using simd::Sub;
using simd::TanhV;

KernelMode ResolveModeFromEnv() {
  const std::string v = EnvString("TRANAD_KERNEL", "simd");
  if (v == "simd") return KernelMode::kSimd;
  if (v == "scalar") return KernelMode::kScalar;
  TRANAD_CHECK_MSG(false,
                   "TRANAD_KERNEL must be 'scalar' or 'simd', got: " << v);
  return KernelMode::kSimd;
}

KernelMode* ModePtr() {
  static KernelMode mode = ResolveModeFromEnv();
  return &mode;
}

// --- op functors: one Apply per backend type via the overload set ---------

struct AddOp {
  template <class T>
  static T Apply(T a, T b) {
    return Add(a, b);
  }
};
struct SubOp {
  template <class T>
  static T Apply(T a, T b) {
    return Sub(a, b);
  }
};
struct MulOp {
  template <class T>
  static T Apply(T a, T b) {
    return Mul(a, b);
  }
};
struct DivOp {
  template <class T>
  static T Apply(T a, T b) {
    return Div(a, b);
  }
};
// std::max bit semantics (first operand on ties/NaN) — the historical
// behaviour of tranad::Maximum.
struct MaxOp {
  template <class T>
  static T Apply(T a, T b) {
    return MaxStd(a, b);
  }
};
struct SquaredDiffOp {
  template <class T>
  static T Apply(T a, T b) {
    const T d = Sub(a, b);
    return Mul(d, d);
  }
};

struct NegOp {
  template <class T>
  static T Apply(T x) {
    return Neg(x);
  }
};
struct AbsOp {
  template <class T>
  static T Apply(T x) {
    return Abs(x);
  }
};
struct SquareOp {
  template <class T>
  static T Apply(T x) {
    return Mul(x, x);
  }
};
struct SqrtOp {
  template <class T>
  static T Apply(T x) {
    return Sqrt(x);
  }
};
struct ReluOp {
  template <class T>
  static T Apply(T x) {
    return SelectGtZero(x, x, SetAll<T>(0.0f));
  }
};
struct ExpOp {
  template <class T>
  static T Apply(T x) {
    return ExpV(x);
  }
};
struct TanhOp {
  template <class T>
  static T Apply(T x) {
    return TanhV(x);
  }
};
struct SigmoidOp {
  template <class T>
  static T Apply(T x) {
    return SigmoidV(x);
  }
};
struct GeluOp {
  template <class T>
  static T Apply(T x) {
    // 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 * x^3))), evaluated in
    // the same order as the historical scalar kernel.
    const T x3 = Mul(Mul(Mul(SetAll<T>(0.044715f), x), x), x);
    const T inner = Mul(SetAll<T>(0.7978845608028654f), Add(x, x3));
    return Mul(Mul(SetAll<T>(0.5f), x), Add(SetAll<T>(1.0f), TanhV(inner)));
  }
};

// --- span loop shells ------------------------------------------------------

template <class V, class Op>
void BinSpanT(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(o + i, Op::Apply(LoadVec<V>(a + i), LoadVec<V>(b + i)));
  }
  for (; i < n; ++i) o[i] = Op::Apply(a[i], b[i]);
}

template <class V, class Op>
void BinSpanRhsT(const float* a, float s, float* o, int64_t n) {
  const V vs = SetAll<V>(s);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(o + i, Op::Apply(LoadVec<V>(a + i), vs));
  }
  for (; i < n; ++i) o[i] = Op::Apply(a[i], s);
}

template <class V, class Op>
void BinSpanLhsT(const float* a, float s, float* o, int64_t n) {
  const V vs = SetAll<V>(s);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(o + i, Op::Apply(vs, LoadVec<V>(a + i)));
  }
  for (; i < n; ++i) o[i] = Op::Apply(s, a[i]);
}

template <class V, class Op>
void UnSpanT(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(o + i, Op::Apply(LoadVec<V>(a + i)));
  }
  for (; i < n; ++i) o[i] = Op::Apply(a[i]);
}

// Dispatch tables, indexed by the enum value. Order must match BinOp/UnOp.
template <class V>
constexpr BinSpanFn kBinTable[] = {
    BinSpanT<V, AddOp>, BinSpanT<V, SubOp>, BinSpanT<V, MulOp>,
    BinSpanT<V, DivOp>, BinSpanT<V, MaxOp>, BinSpanT<V, SquaredDiffOp>,
};
template <class V>
constexpr BinSpanScalarFn kBinRhsTable[] = {
    BinSpanRhsT<V, AddOp>, BinSpanRhsT<V, SubOp>, BinSpanRhsT<V, MulOp>,
    BinSpanRhsT<V, DivOp>, BinSpanRhsT<V, MaxOp>,
    BinSpanRhsT<V, SquaredDiffOp>,
};
template <class V>
constexpr BinSpanScalarFn kBinLhsTable[] = {
    BinSpanLhsT<V, AddOp>, BinSpanLhsT<V, SubOp>, BinSpanLhsT<V, MulOp>,
    BinSpanLhsT<V, DivOp>, BinSpanLhsT<V, MaxOp>,
    BinSpanLhsT<V, SquaredDiffOp>,
};
template <class V>
constexpr UnSpanFn kUnTable[] = {
    UnSpanT<V, NegOp>,  UnSpanT<V, AbsOp>,     UnSpanT<V, SquareOp>,
    UnSpanT<V, SqrtOp>, UnSpanT<V, ReluOp>,    UnSpanT<V, ExpOp>,
    UnSpanT<V, TanhOp>, UnSpanT<V, SigmoidOp>, UnSpanT<V, GeluOp>,
};

// Calls F<NativeVec> or F<ScalarVec> depending on the active config.
#define TRANAD_KERNEL_DISPATCH(fn, ...)                 \
  do {                                                  \
    if (CurrentKernelMode() == KernelMode::kSimd) {     \
      fn<NativeVec>(__VA_ARGS__);                       \
    } else {                                            \
      fn<ScalarVec>(__VA_ARGS__);                       \
    }                                                   \
  } while (0)

// --- misc spans ------------------------------------------------------------

template <class V>
void ScaleShiftSpanT(const float* a, float scale, float shift, float* o,
                     int64_t n) {
  const V vs = SetAll<V>(scale);
  const V vh = SetAll<V>(shift);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(o + i, Add(Mul(LoadVec<V>(a + i), vs), vh));
  }
  for (; i < n; ++i) o[i] = Add(Mul(a[i], scale), shift);
}

template <class V>
void LeakyReluSpanT(const float* a, float slope, float* o, int64_t n) {
  const V vs = SetAll<V>(slope);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const V x = LoadVec<V>(a + i);
    StoreU(o + i, SelectGtZero(x, x, Mul(vs, x)));
  }
  for (; i < n; ++i) {
    const float x = a[i];
    o[i] = SelectGtZero(x, x, Mul(slope, x));
  }
}

template <class V>
void ScaledDiffSpanT(const float* a, const float* b, float s, float* o,
                     int64_t n) {
  const V vs = SetAll<V>(s);
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(o + i, Mul(vs, Sub(LoadVec<V>(a + i), LoadVec<V>(b + i))));
  }
  for (; i < n; ++i) o[i] = Mul(s, Sub(a[i], b[i]));
}

// --- striped row reductions ------------------------------------------------
//
// A row sum is accumulated as kLanes independent lane sums over the full
// vector chunks, folded with the fixed HAdd tree, then combined with a
// left-to-right scalar tail: total = Add(HAdd(vec), tail). The order is a
// pure function of the row length, so results are schedule-independent and
// identical in both configs.

template <class V>
float RowSum(const float* p, int64_t n) {
  V vsum = SetAll<V>(0.0f);
  float tail = 0.0f;
  int64_t j = 0;
  for (; j + kLanes <= n; j += kLanes) vsum = Add(vsum, LoadVec<V>(p + j));
  for (; j < n; ++j) tail = Add(tail, p[j]);
  return Add(HAdd(vsum), tail);
}

template <class V>
float RowDot(const float* a, const float* b, int64_t n) {
  V vsum = SetAll<V>(0.0f);
  float tail = 0.0f;
  int64_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    vsum = Add(vsum, Mul(LoadVec<V>(a + j), LoadVec<V>(b + j)));
  }
  for (; j < n; ++j) tail = Add(tail, Mul(a[j], b[j]));
  return Add(HAdd(vsum), tail);
}

template <class V>
float RowMax(const float* p, int64_t n) {
  float mx;
  int64_t j;
  if (n >= kLanes) {
    V vmx = LoadVec<V>(p);
    for (j = kLanes; j + kLanes <= n; j += kLanes) {
      vmx = Max(vmx, LoadVec<V>(p + j));
    }
    mx = HMax(vmx);
  } else {
    mx = p[0];
    j = 1;
  }
  for (; j < n; ++j) mx = Max(mx, p[j]);
  return mx;
}

// --- fused row kernels -----------------------------------------------------

template <class V>
void SoftmaxRowsT(const float* x, float* out, int64_t rows, int64_t n) {
  if (n <= 0) return;
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    float* orow = out + r * n;
    const float mx = RowMax<V>(row, n);
    const V vmx = SetAll<V>(mx);
    V vsum = SetAll<V>(0.0f);
    float tsum = 0.0f;
    int64_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      const V e = ExpV(Sub(LoadVec<V>(row + j), vmx));
      StoreU(orow + j, e);
      vsum = Add(vsum, e);
    }
    for (; j < n; ++j) {
      const float e = ExpV(Sub(row[j], mx));
      orow[j] = e;
      tsum = Add(tsum, e);
    }
    const float inv = Div(1.0f, Add(HAdd(vsum), tsum));
    const V vinv = SetAll<V>(inv);
    for (j = 0; j + kLanes <= n; j += kLanes) {
      StoreU(orow + j, Mul(LoadVec<V>(orow + j), vinv));
    }
    for (; j < n; ++j) orow[j] = Mul(orow[j], inv);
  }
}

template <class V>
void SoftmaxBackwardRowsT(const float* y, const float* g, float* out,
                          int64_t rows, int64_t n) {
  if (n <= 0) return;
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * n;
    const float* gr = g + r * n;
    float* orow = out + r * n;
    const float dot = RowDot<V>(yr, gr, n);
    const V vdot = SetAll<V>(dot);
    int64_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      StoreU(orow + j,
             Mul(LoadVec<V>(yr + j), Sub(LoadVec<V>(gr + j), vdot)));
    }
    for (; j < n; ++j) orow[j] = Mul(yr[j], Sub(gr[j], dot));
  }
}

template <class V>
void LayerNormRowsT(const float* x, float* out, float* inv_std, int64_t rows,
                    int64_t n, float eps) {
  if (n <= 0) return;
  const float nf = static_cast<float>(n);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    float* orow = out + r * n;
    const float mean = Div(RowSum<V>(row, n), nf);
    const V vmean = SetAll<V>(mean);
    V vvar = SetAll<V>(0.0f);
    float tvar = 0.0f;
    int64_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      const V d = Sub(LoadVec<V>(row + j), vmean);
      vvar = Add(vvar, Mul(d, d));
    }
    for (; j < n; ++j) {
      const float d = Sub(row[j], mean);
      tvar = Add(tvar, Mul(d, d));
    }
    const float var = Div(Add(HAdd(vvar), tvar), nf);
    const float inv = Div(1.0f, Sqrt(Add(var, eps)));
    if (inv_std != nullptr) inv_std[r] = inv;
    const V vinv = SetAll<V>(inv);
    for (j = 0; j + kLanes <= n; j += kLanes) {
      StoreU(orow + j, Mul(Sub(LoadVec<V>(row + j), vmean), vinv));
    }
    for (; j < n; ++j) orow[j] = Mul(Sub(row[j], mean), inv);
  }
}

template <class V>
void LayerNormAffineRowsT(const float* x, const float* gain,
                          const float* bias, float* out, float* yhat,
                          float* inv_std, int64_t rows, int64_t n,
                          float eps) {
  if (n <= 0) return;
  const float nf = static_cast<float>(n);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    float* orow = out + r * n;
    float* yrow = yhat != nullptr ? yhat + r * n : nullptr;
    const float mean = Div(RowSum<V>(row, n), nf);
    const V vmean = SetAll<V>(mean);
    V vvar = SetAll<V>(0.0f);
    float tvar = 0.0f;
    int64_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      const V d = Sub(LoadVec<V>(row + j), vmean);
      vvar = Add(vvar, Mul(d, d));
    }
    for (; j < n; ++j) {
      const float d = Sub(row[j], mean);
      tvar = Add(tvar, Mul(d, d));
    }
    const float var = Div(Add(HAdd(vvar), tvar), nf);
    const float inv = Div(1.0f, Sqrt(Add(var, eps)));
    if (inv_std != nullptr) inv_std[r] = inv;
    const V vinv = SetAll<V>(inv);
    // out = yhat * gain + bias, per-element identical to composing the
    // unfused LayerNorm -> Mul -> Add chain.
    for (j = 0; j + kLanes <= n; j += kLanes) {
      const V yv = Mul(Sub(LoadVec<V>(row + j), vmean), vinv);
      if (yrow != nullptr) StoreU(yrow + j, yv);
      StoreU(orow + j,
             Add(Mul(yv, LoadVec<V>(gain + j)), LoadVec<V>(bias + j)));
    }
    for (; j < n; ++j) {
      const float yv = Mul(Sub(row[j], mean), inv);
      if (yrow != nullptr) yrow[j] = yv;
      orow[j] = Add(Mul(yv, gain[j]), bias[j]);
    }
  }
}

template <class V>
void LayerNormBackwardRowsT(const float* yhat, const float* g,
                            const float* inv_std, float* out, int64_t rows,
                            int64_t n) {
  if (n <= 0) return;
  const float nf = static_cast<float>(n);
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = yhat + r * n;
    const float* gr = g + r * n;
    float* orow = out + r * n;
    // Two striped sums in one pass: sum(g) and sum(g * yhat).
    V vg = SetAll<V>(0.0f);
    V vgy = SetAll<V>(0.0f);
    float tg = 0.0f;
    float tgy = 0.0f;
    int64_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      const V gv = LoadVec<V>(gr + j);
      vg = Add(vg, gv);
      vgy = Add(vgy, Mul(gv, LoadVec<V>(yr + j)));
    }
    for (; j < n; ++j) {
      tg = Add(tg, gr[j]);
      tgy = Add(tgy, Mul(gr[j], yr[j]));
    }
    const float sum_g = Add(HAdd(vg), tg);
    const float sum_gy = Add(HAdd(vgy), tgy);
    // dx = inv/n * (n*g - sum(g) - yhat * sum(g*yhat))
    const float a = Div(inv_std[r], nf);
    const V va = SetAll<V>(a);
    const V vnf = SetAll<V>(nf);
    const V vsg = SetAll<V>(sum_g);
    const V vsgy = SetAll<V>(sum_gy);
    for (j = 0; j + kLanes <= n; j += kLanes) {
      const V gv = LoadVec<V>(gr + j);
      const V yv = LoadVec<V>(yr + j);
      StoreU(orow + j,
             Mul(va, Sub(Sub(Mul(vnf, gv), vsg), Mul(yv, vsgy))));
    }
    for (; j < n; ++j) {
      orow[j] =
          Mul(a, Sub(Sub(Mul(nf, gr[j]), sum_g), Mul(yr[j], sum_gy)));
    }
  }
}

template <class V>
void LayerNormAffineBackwardRowsT(const float* yhat, const float* g,
                                  const float* gain, const float* inv_std,
                                  float* out, int64_t rows, int64_t n) {
  if (n <= 0) return;
  const float nf = static_cast<float>(n);
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = yhat + r * n;
    const float* gr = g + r * n;
    float* orow = out + r * n;
    // Fold the gain into the upstream gradient (gy = g * gain), then the
    // plain layernorm backward in terms of gy.
    V vg = SetAll<V>(0.0f);
    V vgy = SetAll<V>(0.0f);
    float tg = 0.0f;
    float tgy = 0.0f;
    int64_t j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      const V gyv = Mul(LoadVec<V>(gr + j), LoadVec<V>(gain + j));
      vg = Add(vg, gyv);
      vgy = Add(vgy, Mul(gyv, LoadVec<V>(yr + j)));
    }
    for (; j < n; ++j) {
      const float gyv = Mul(gr[j], gain[j]);
      tg = Add(tg, gyv);
      tgy = Add(tgy, Mul(gyv, yr[j]));
    }
    const float sum_g = Add(HAdd(vg), tg);
    const float sum_gy = Add(HAdd(vgy), tgy);
    const float a = Div(inv_std[r], nf);
    const V va = SetAll<V>(a);
    const V vnf = SetAll<V>(nf);
    const V vsg = SetAll<V>(sum_g);
    const V vsgy = SetAll<V>(sum_gy);
    for (j = 0; j + kLanes <= n; j += kLanes) {
      const V gyv = Mul(LoadVec<V>(gr + j), LoadVec<V>(gain + j));
      const V yv = LoadVec<V>(yr + j);
      StoreU(orow + j,
             Mul(va, Sub(Sub(Mul(vnf, gyv), vsg), Mul(yv, vsgy))));
    }
    for (; j < n; ++j) {
      const float gyv = Mul(gr[j], gain[j]);
      orow[j] =
          Mul(a, Sub(Sub(Mul(nf, gyv), sum_g), Mul(yr[j], sum_gy)));
    }
  }
}

// --- matmul ----------------------------------------------------------------

// Accumulates a block of kVecs vectors of output columns [j0, j0+kVecs*L)
// for one output row, in the exact historical accumulation order: ascending
// p in groups of four, each group's contributions chained
// (((acc + a0*b0) + a1*b1) + a2*b2) + a3*b3, all-zero groups skipped, then
// an ascending scalar-p tail. Register accumulation instead of the old
// store/reload through orow — value-identical, one store per element.
template <class V, int kVecs>
inline void MatMulColumnBlock(const float* __restrict arow,
                              const float* __restrict b,
                              float* __restrict orow, int64_t k, int64_t n,
                              int64_t j0) {
  V acc[kVecs];
  for (int v = 0; v < kVecs; ++v) acc[v] = SetAll<V>(0.0f);
  int64_t p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p];
    const float av1 = arow[p + 1];
    const float av2 = arow[p + 2];
    const float av3 = arow[p + 3];
    if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) {
      continue;
    }
    const float* __restrict r0 = b + p * n + j0;
    const V va0 = SetAll<V>(av0);
    const V va1 = SetAll<V>(av1);
    const V va2 = SetAll<V>(av2);
    const V va3 = SetAll<V>(av3);
    for (int v = 0; v < kVecs; ++v) {
      V t = Add(acc[v], Mul(va0, LoadVec<V>(r0 + v * kLanes)));
      t = Add(t, Mul(va1, LoadVec<V>(r0 + n + v * kLanes)));
      t = Add(t, Mul(va2, LoadVec<V>(r0 + 2 * n + v * kLanes)));
      t = Add(t, Mul(va3, LoadVec<V>(r0 + 3 * n + v * kLanes)));
      acc[v] = t;
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    if (av == 0.0f) continue;
    const float* __restrict r = b + p * n + j0;
    const V va = SetAll<V>(av);
    for (int v = 0; v < kVecs; ++v) {
      acc[v] = Add(acc[v], Mul(va, LoadVec<V>(r + v * kLanes)));
    }
  }
  for (int v = 0; v < kVecs; ++v) StoreU(orow + j0 + v * kLanes, acc[v]);
}

// Remainder columns [j0, n): plain float, same chain order — identical in
// both configs.
void MatMulScalarColumns(const float* __restrict arow,
                         const float* __restrict b, float* __restrict orow,
                         int64_t k, int64_t n, int64_t j0) {
  for (int64_t j = j0; j < n; ++j) {
    float acc = 0.0f;
    int64_t p = 0;
    for (; p + 3 < k; p += 4) {
      const float av0 = arow[p];
      const float av1 = arow[p + 1];
      const float av2 = arow[p + 2];
      const float av3 = arow[p + 3];
      if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) {
        continue;
      }
      const float* __restrict r0 = b + p * n + j;
      acc = Add(acc, Mul(av0, r0[0]));
      acc = Add(acc, Mul(av1, r0[n]));
      acc = Add(acc, Mul(av2, r0[2 * n]));
      acc = Add(acc, Mul(av3, r0[3 * n]));
    }
    for (; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      acc = Add(acc, Mul(av, b[p * n + j]));
    }
    orow[j] = acc;
  }
}

// Direct (unpacked) row kernel: axpy structure — p outer, vectorized sweep
// over output columns inner — so b streams through memory exactly once per
// output row while the row accumulator stays L1-resident. Per element the
// adds land in the exact historical order (ascending p, 4-way groups,
// ascending tail); the store/reload through orow between groups is
// value-identical to register accumulation.
template <class V>
void MatMulRowT(const float* __restrict arow, const float* __restrict b,
                float* __restrict orow, int64_t k, int64_t n) {
  const V vzero = SetAll<V>(0.0f);
  int64_t j = 0;
  for (; j + kLanes <= n; j += kLanes) StoreU(orow + j, vzero);
  for (; j < n; ++j) orow[j] = 0.0f;
  int64_t p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p];
    const float av1 = arow[p + 1];
    const float av2 = arow[p + 2];
    const float av3 = arow[p + 3];
    if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) {
      continue;
    }
    const float* __restrict r0 = b + p * n;
    const V va0 = SetAll<V>(av0);
    const V va1 = SetAll<V>(av1);
    const V va2 = SetAll<V>(av2);
    const V va3 = SetAll<V>(av3);
    int64_t c = 0;
    for (; c + kLanes <= n; c += kLanes) {
      V t = Add(LoadVec<V>(orow + c), Mul(va0, LoadVec<V>(r0 + c)));
      t = Add(t, Mul(va1, LoadVec<V>(r0 + n + c)));
      t = Add(t, Mul(va2, LoadVec<V>(r0 + 2 * n + c)));
      t = Add(t, Mul(va3, LoadVec<V>(r0 + 3 * n + c)));
      StoreU(orow + c, t);
    }
    for (; c < n; ++c) {
      float t = Add(orow[c], Mul(av0, r0[c]));
      t = Add(t, Mul(av1, r0[n + c]));
      t = Add(t, Mul(av2, r0[2 * n + c]));
      t = Add(t, Mul(av3, r0[3 * n + c]));
      orow[c] = t;
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    if (av == 0.0f) continue;
    const float* __restrict r = b + p * n;
    const V va = SetAll<V>(av);
    int64_t c = 0;
    for (; c + kLanes <= n; c += kLanes) {
      StoreU(orow + c, Add(LoadVec<V>(orow + c), Mul(va, LoadVec<V>(r + c))));
    }
    for (; c < n; ++c) orow[c] = Add(orow[c], Mul(av, r[c]));
  }
}

template <class V>
void MatMulRowPackedT(const float* __restrict arow,
                      const float* __restrict packed,
                      const float* __restrict b, float* __restrict orow,
                      int64_t k, int64_t n) {
  constexpr int64_t kNR = 4 * kLanes;
  const int64_t npanels = n / kNR;
  for (int64_t q = 0; q < npanels; ++q) {
    const float* __restrict panel = packed + q * k * kNR;
    V acc[4];
    for (int v = 0; v < 4; ++v) acc[v] = SetAll<V>(0.0f);
    int64_t p = 0;
    for (; p + 3 < k; p += 4) {
      const float av0 = arow[p];
      const float av1 = arow[p + 1];
      const float av2 = arow[p + 2];
      const float av3 = arow[p + 3];
      if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) {
        continue;
      }
      const float* __restrict r0 = panel + p * kNR;
      const V va0 = SetAll<V>(av0);
      const V va1 = SetAll<V>(av1);
      const V va2 = SetAll<V>(av2);
      const V va3 = SetAll<V>(av3);
      for (int v = 0; v < 4; ++v) {
        V t = Add(acc[v], Mul(va0, LoadVec<V>(r0 + v * kLanes)));
        t = Add(t, Mul(va1, LoadVec<V>(r0 + kNR + v * kLanes)));
        t = Add(t, Mul(va2, LoadVec<V>(r0 + 2 * kNR + v * kLanes)));
        t = Add(t, Mul(va3, LoadVec<V>(r0 + 3 * kNR + v * kLanes)));
        acc[v] = t;
      }
    }
    for (; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* __restrict r = panel + p * kNR;
      const V va = SetAll<V>(av);
      for (int v = 0; v < 4; ++v) {
        acc[v] = Add(acc[v], Mul(va, LoadVec<V>(r + v * kLanes)));
      }
    }
    for (int v = 0; v < 4; ++v) {
      StoreU(orow + q * kNR + v * kLanes, acc[v]);
    }
  }
  // Columns past the last full panel come straight from b.
  int64_t j0 = npanels * kNR;
  for (; j0 + kLanes <= n; j0 += kLanes) {
    MatMulColumnBlock<V, 1>(arow, b, orow, k, n, j0);
  }
  if (j0 < n) MatMulScalarColumns(arow, b, orow, k, n, j0);
}

}  // namespace

KernelMode CurrentKernelMode() { return *ModePtr(); }

void SetKernelModeForTesting(KernelMode mode) { *ModePtr() = mode; }

const char* KernelModeName() {
  return CurrentKernelMode() == KernelMode::kSimd ? "simd" : "scalar";
}

const char* KernelIsaName() { return simd::kIsaName; }

int KernelLanes() { return kLanes; }

BinSpanFn GetBinarySpan(BinOp op) {
  const int i = static_cast<int>(op);
  return CurrentKernelMode() == KernelMode::kSimd ? kBinTable<NativeVec>[i]
                                                  : kBinTable<ScalarVec>[i];
}

BinSpanScalarFn GetBinarySpanScalarRhs(BinOp op) {
  const int i = static_cast<int>(op);
  return CurrentKernelMode() == KernelMode::kSimd ? kBinRhsTable<NativeVec>[i]
                                                  : kBinRhsTable<ScalarVec>[i];
}

BinSpanScalarFn GetBinarySpanScalarLhs(BinOp op) {
  const int i = static_cast<int>(op);
  return CurrentKernelMode() == KernelMode::kSimd ? kBinLhsTable<NativeVec>[i]
                                                  : kBinLhsTable<ScalarVec>[i];
}

UnSpanFn GetUnarySpan(UnOp op) {
  const int i = static_cast<int>(op);
  return CurrentKernelMode() == KernelMode::kSimd ? kUnTable<NativeVec>[i]
                                                  : kUnTable<ScalarVec>[i];
}

void ScaleShiftSpan(const float* a, float scale, float shift, float* out,
                    int64_t n) {
  TRANAD_KERNEL_DISPATCH(ScaleShiftSpanT, a, scale, shift, out, n);
}

void LeakyReluSpan(const float* a, float slope, float* out, int64_t n) {
  TRANAD_KERNEL_DISPATCH(LeakyReluSpanT, a, slope, out, n);
}

void ScaledDiffSpan(const float* a, const float* b, float s, float* out,
                    int64_t n) {
  TRANAD_KERNEL_DISPATCH(ScaledDiffSpanT, a, b, s, out, n);
}

void SoftmaxRows(const float* x, float* out, int64_t rows, int64_t n) {
  TRANAD_KERNEL_DISPATCH(SoftmaxRowsT, x, out, rows, n);
}

void SoftmaxBackwardRows(const float* y, const float* g, float* out,
                         int64_t rows, int64_t n) {
  TRANAD_KERNEL_DISPATCH(SoftmaxBackwardRowsT, y, g, out, rows, n);
}

void LayerNormRows(const float* x, float* out, float* inv_std, int64_t rows,
                   int64_t n, float eps) {
  TRANAD_KERNEL_DISPATCH(LayerNormRowsT, x, out, inv_std, rows, n, eps);
}

void LayerNormAffineRows(const float* x, const float* gain, const float* bias,
                         float* out, float* yhat, float* inv_std,
                         int64_t rows, int64_t n, float eps) {
  TRANAD_KERNEL_DISPATCH(LayerNormAffineRowsT, x, gain, bias, out, yhat,
                         inv_std, rows, n, eps);
}

void LayerNormBackwardRows(const float* yhat, const float* g,
                           const float* inv_std, float* out, int64_t rows,
                           int64_t n) {
  TRANAD_KERNEL_DISPATCH(LayerNormBackwardRowsT, yhat, g, inv_std, out, rows,
                         n);
}

void LayerNormAffineBackwardRows(const float* yhat, const float* g,
                                 const float* gain, const float* inv_std,
                                 float* out, int64_t rows, int64_t n) {
  TRANAD_KERNEL_DISPATCH(LayerNormAffineBackwardRowsT, yhat, g, gain, inv_std,
                         out, rows, n);
}

double SquaredDiffSumAll(const float* a, const float* b, int64_t n) {
  // Serial, index-ordered double accumulation with float intermediates —
  // exactly the value the old MeanAll(Square(Sub(..))) chain produced, and
  // the deterministic full-reduction contract (see SumAll).
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    const float sq = d * d;
    s += sq;
  }
  return s;
}

void MatMulRowKernel(const float* a_row, const float* b, float* out,
                     int64_t k, int64_t n) {
  TRANAD_KERNEL_DISPATCH(MatMulRowT, a_row, b, out, k, n);
}

int64_t PackedPanelWidth() { return 4 * static_cast<int64_t>(kLanes); }

int64_t NumPackedFloats(int64_t k, int64_t n) {
  const int64_t nr = PackedPanelWidth();
  return (n / nr) * nr * k;
}

void PackB(const float* b, int64_t k, int64_t n, float* packed) {
  const int64_t nr = PackedPanelWidth();
  const int64_t npanels = n / nr;
  for (int64_t q = 0; q < npanels; ++q) {
    float* dst = packed + q * k * nr;
    const float* src = b + q * nr;
    for (int64_t p = 0; p < k; ++p) {
      std::memcpy(dst + p * nr, src + p * n, sizeof(float) * nr);
    }
  }
}

void MatMulRowPacked(const float* a_row, const float* packed, const float* b,
                     float* out, int64_t k, int64_t n) {
  TRANAD_KERNEL_DISPATCH(MatMulRowPackedT, a_row, packed, b, out, k, n);
}

}  // namespace tranad::kernels
